//! The STRAP-style log-scaled proximity transform.
//!
//! `M_S(s, v) = log(p_s(v)/r_max + pᵀ_s(v)/r_max)`, kept only where the
//! argument exceeds 1 (so the stored matrix is sparse and non-negative).
//! Dividing by `r_max` rescales estimates into "units of the push
//! threshold"; the logarithm is the usual representation-power non-linearity
//! (STRAP, Lemane).

use crate::state::PprState;

/// Build the sparse proximity row for one source from its forward and
/// reverse push states. Returns `(node, value)` pairs sorted by node id.
///
/// Slightly negative estimates (possible transiently after deletions, before
/// the re-push) are clamped to zero.
pub fn proximity_row(fwd: &PprState, bwd: &PprState, r_max: f64) -> Vec<(u32, f64)> {
    debug_assert_eq!(fwd.source, bwd.source);
    let mut combined: Vec<(u32, f64)> = Vec::with_capacity(fwd.estimate_nnz() + bwd.estimate_nnz());
    for (v, p) in fwd.estimates() {
        if p > 0.0 {
            combined.push((v, p));
        }
    }
    for (v, p) in bwd.estimates() {
        if p > 0.0 {
            combined.push((v, p));
        }
    }
    combined.sort_unstable_by_key(|e| e.0);
    let mut out: Vec<(u32, f64)> = Vec::with_capacity(combined.len());
    let mut iter = combined.into_iter().peekable();
    while let Some((v, mut p)) = iter.next() {
        while iter.peek().is_some_and(|&(v2, _)| v2 == v) {
            p += iter.next().unwrap().1;
        }
        let scaled = p / r_max;
        if scaled > 1.0 {
            out.push((v, scaled.ln()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::PprState;

    fn state_with(source: u32, entries: &[(u32, f64)]) -> PprState {
        let mut s = PprState::new(source);
        for &(v, p) in entries {
            s.add_p(v, p);
        }
        s
    }

    #[test]
    fn combines_directions_and_logs() {
        let fwd = state_with(0, &[(1, 0.4), (2, 0.1)]);
        let bwd = state_with(0, &[(1, 0.2), (3, 0.3)]);
        let row = proximity_row(&fwd, &bwd, 0.01);
        let cols: Vec<u32> = row.iter().map(|e| e.0).collect();
        assert_eq!(cols, vec![1, 2, 3]);
        let v1 = row[0].1;
        assert!((v1 - (0.6_f64 / 0.01).ln()).abs() < 1e-12);
    }

    #[test]
    fn drops_subthreshold_entries() {
        let fwd = state_with(0, &[(1, 0.005), (2, 0.02)]);
        let bwd = state_with(0, &[]);
        let row = proximity_row(&fwd, &bwd, 0.01);
        // 0.005/0.01 = 0.5 ≤ 1 dropped; 0.02/0.01 = 2 kept.
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].0, 2);
        assert!(row[0].1 > 0.0, "retained entries are positive");
    }

    #[test]
    fn negative_estimates_clamped() {
        let fwd = state_with(0, &[(1, -0.3), (2, 0.05)]);
        let bwd = state_with(0, &[(1, 0.002)]);
        let row = proximity_row(&fwd, &bwd, 0.01);
        // Node 1: only the positive bwd part counts → 0.2 ≤ 1 → dropped.
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].0, 2);
    }

    #[test]
    fn sorted_output() {
        let fwd = state_with(0, &[(9, 0.5), (1, 0.5)]);
        let bwd = state_with(0, &[(5, 0.5)]);
        let row = proximity_row(&fwd, &bwd, 0.001);
        let cols: Vec<u32> = row.iter().map(|e| e.0).collect();
        assert_eq!(cols, vec![1, 5, 9]);
    }
}
