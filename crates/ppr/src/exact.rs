//! Exact PPR via dense power iteration — ground truth for tests and for
//! accuracy experiments. Only suitable for small graphs.

use tsvd_graph::{Direction, DynGraph};

/// Exact PPR row `π_s(·)` with decay `alpha`, iterated until the residual
/// mass drops below `tol`.
///
/// Semantics match the push engine: a walk at a node with no neighbors in
/// `dir` terminates there (dangling absorption).
pub fn exact_ppr_row(g: &DynGraph, dir: Direction, source: u32, alpha: f64, tol: f64) -> Vec<f64> {
    let n = g.num_nodes();
    let mut pi = vec![0.0; n];
    // Residue formulation of power iteration: walk mass `w` still in flight.
    let mut w = vec![0.0; n];
    w[source as usize] = 1.0;
    let mut inflight = 1.0;
    while inflight > tol {
        let mut next = vec![0.0; n];
        for u in 0..n {
            let mass = w[u];
            if mass == 0.0 {
                continue;
            }
            let nbrs = g.neighbors(u as u32, dir);
            if nbrs.is_empty() {
                // Dangling: terminate here.
                pi[u] += mass;
                continue;
            }
            pi[u] += alpha * mass;
            let spread = (1.0 - alpha) * mass / nbrs.len() as f64;
            for &v in nbrs {
                next[v as usize] += spread;
            }
        }
        w = next;
        inflight = w.iter().sum();
    }
    // Distribute the tail proportionally nowhere — it is below tol and the
    // caller treats `pi` as accurate to `tol`.
    pi
}

/// Exact PPR matrix for all sources in `sources` (rows in source order).
pub fn exact_ppr_rows(
    g: &DynGraph,
    dir: Direction,
    sources: &[u32],
    alpha: f64,
    tol: f64,
) -> Vec<Vec<f64>> {
    sources
        .iter()
        .map(|&s| exact_ppr_row(g, dir, s, alpha, tol))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_one() {
        let mut g = DynGraph::with_nodes(5);
        for u in 0..5u32 {
            g.insert_edge(u, (u + 2) % 5);
            g.insert_edge(u, (u + 1) % 5);
        }
        let pi = exact_ppr_row(&g, Direction::Out, 0, 0.2, 1e-12);
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_source_keeps_all_mass() {
        let g = DynGraph::with_nodes(3);
        let pi = exact_ppr_row(&g, Direction::Out, 1, 0.2, 1e-12);
        assert_eq!(pi, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn two_node_chain_closed_form() {
        // 0 → 1 (1 dangling): π_0(0) = α, π_0(1) = 1 − α.
        let mut g = DynGraph::with_nodes(2);
        g.insert_edge(0, 1);
        let alpha = 0.37;
        let pi = exact_ppr_row(&g, Direction::Out, 0, alpha, 1e-13);
        assert!((pi[0] - alpha).abs() < 1e-10);
        assert!((pi[1] - (1.0 - alpha)).abs() < 1e-10);
    }

    #[test]
    fn symmetric_cycle_is_uniformish() {
        // On a directed cycle, π_s decays geometrically with distance.
        let mut g = DynGraph::with_nodes(4);
        for u in 0..4u32 {
            g.insert_edge(u, (u + 1) % 4);
        }
        let alpha = 0.5;
        let pi = exact_ppr_row(&g, Direction::Out, 0, alpha, 1e-13);
        // π(dist k) ∝ (1−α)^k within a cycle revolution sum.
        assert!(pi[0] > pi[1] && pi[1] > pi[2] && pi[2] > pi[3]);
        let ratio = pi[1] / pi[0];
        let ratio2 = pi[2] / pi[1];
        assert!((ratio - ratio2).abs() < 1e-9, "geometric decay");
    }
}
