//! Per-source push state: the estimate vector `p_s` and residue vector `r_s`.

use std::collections::{HashMap, VecDeque};

use tsvd_rt::json::{field, FromJson, Json, JsonError, ToJson};

/// The local-push state of one PPR source: sparse estimate (`p`) and residue
/// (`r`) vectors, per Algorithm 1 of the paper.
///
/// Both vectors are sparse hash maps — forward push touches `O(1/r_max)`
/// nodes, a vanishing fraction of the graph. The `dirty` flag is set by any
/// mutation and cleared by the consumer (the proximity-matrix layer uses it
/// to rebuild only the rows that changed).
#[derive(Debug, Clone)]
pub struct PprState {
    /// The source node `s`.
    pub source: u32,
    pub(crate) p: HashMap<u32, f64>,
    pub(crate) r: HashMap<u32, f64>,
    /// Set whenever `p` changes; cleared via [`PprState::clear_dirty`].
    pub dirty: bool,
    /// Reusable push working memory (seed sort + frontier queue). Purely
    /// transient: always empty between pushes, excluded from serialisation.
    pub(crate) scratch: PushScratch,
}

/// Per-state scratch buffers for [`crate::push::forward_push`], kept on the
/// state so the dynamic re-push of every source in every window does not
/// pay two heap allocations (seed Vec + frontier VecDeque) per call.
#[derive(Debug, Clone, Default)]
pub(crate) struct PushScratch {
    pub(crate) seeds: Vec<u32>,
    pub(crate) queue: VecDeque<u32>,
}

// Manual JSON impls (not `impl_json_struct!`): `scratch` is working memory,
// not state — it is skipped on encode and default-initialised on decode, so
// the wire format is unchanged from the pre-scratch derive.
impl ToJson for PprState {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("source".to_string(), self.source.to_json()),
            ("p".to_string(), self.p.to_json()),
            ("r".to_string(), self.r.to_json()),
            ("dirty".to_string(), self.dirty.to_json()),
        ])
    }
}

impl FromJson for PprState {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(PprState {
            source: field(j, "source")?,
            p: field(j, "p")?,
            r: field(j, "r")?,
            dirty: field(j, "dirty")?,
            scratch: PushScratch::default(),
        })
    }
}

impl PprState {
    /// Fresh state for `source`: `p = 0`, `r = 1_s` (one-hot residue).
    pub fn new(source: u32) -> Self {
        let mut r = HashMap::new();
        r.insert(source, 1.0);
        PprState {
            source,
            p: HashMap::new(),
            r,
            dirty: true,
            scratch: PushScratch::default(),
        }
    }

    /// Reset to the fresh state (used when an incremental update falls back
    /// to a from-scratch push).
    pub fn reset(&mut self) {
        self.p.clear();
        self.r.clear();
        self.r.insert(self.source, 1.0);
        self.dirty = true;
    }

    /// Current estimate `p_s(u)` of `π_s(u)`.
    #[inline]
    pub fn estimate(&self, u: u32) -> f64 {
        self.p.get(&u).copied().unwrap_or(0.0)
    }

    /// Current residue `r_s(u)`.
    #[inline]
    pub fn residue(&self, u: u32) -> f64 {
        self.r.get(&u).copied().unwrap_or(0.0)
    }

    /// Iterate non-zero estimate entries.
    pub fn estimates(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.p.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate non-zero residue entries.
    pub fn residues(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.r.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of non-zero estimate entries.
    pub fn estimate_nnz(&self) -> usize {
        self.p.len()
    }

    /// Sum of all estimates (≤ 1 + O(r_max·pushes) for a fresh push).
    pub fn estimate_mass(&self) -> f64 {
        self.p.values().sum()
    }

    /// Total absolute residue mass.
    pub fn residue_mass(&self) -> f64 {
        self.r.values().map(|v| v.abs()).sum()
    }

    /// Clear the dirty flag, returning its previous value.
    pub fn clear_dirty(&mut self) -> bool {
        std::mem::replace(&mut self.dirty, false)
    }

    #[inline]
    pub(crate) fn add_p(&mut self, u: u32, delta: f64) {
        if delta == 0.0 {
            return;
        }
        let e = self.p.entry(u).or_insert(0.0);
        *e += delta;
        if *e == 0.0 {
            self.p.remove(&u);
        }
        self.dirty = true;
    }

    #[inline]
    pub(crate) fn scale_p(&mut self, u: u32, factor: f64) {
        if let Some(e) = self.p.get_mut(&u) {
            *e *= factor;
            if *e == 0.0 {
                self.p.remove(&u);
            }
            self.dirty = true;
        }
    }

    #[inline]
    pub(crate) fn add_r(&mut self, u: u32, delta: f64) {
        if delta == 0.0 {
            return;
        }
        let e = self.r.entry(u).or_insert(0.0);
        *e += delta;
        if *e == 0.0 {
            self.r.remove(&u);
        }
    }

    #[inline]
    pub(crate) fn take_r(&mut self, u: u32) -> f64 {
        self.r.remove(&u).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_one_hot() {
        let s = PprState::new(7);
        assert_eq!(s.residue(7), 1.0);
        assert_eq!(s.residue(3), 0.0);
        assert_eq!(s.estimate(7), 0.0);
        assert_eq!(s.estimate_mass(), 0.0);
        assert_eq!(s.residue_mass(), 1.0);
    }

    #[test]
    fn add_and_remove_entries() {
        let mut s = PprState::new(0);
        s.add_p(4, 0.5);
        assert_eq!(s.estimate(4), 0.5);
        s.add_p(4, -0.5);
        assert_eq!(s.estimate_nnz(), 0, "exact-zero entries are dropped");
        s.add_r(2, 0.25);
        assert_eq!(s.take_r(2), 0.25);
        assert_eq!(s.residue(2), 0.0);
    }

    #[test]
    fn dirty_flag_lifecycle() {
        let mut s = PprState::new(1);
        assert!(s.clear_dirty());
        assert!(!s.clear_dirty());
        s.add_p(9, 0.1);
        assert!(s.dirty);
        s.clear_dirty();
        s.scale_p(9, 2.0);
        assert!(s.dirty);
        assert_eq!(s.estimate(9), 0.2);
    }

    #[test]
    fn json_skips_scratch_and_round_trips() {
        let mut s = PprState::new(3);
        s.add_p(1, 0.25);
        s.add_r(2, -0.5);
        s.scratch.seeds.push(9); // dirty scratch must not leak into JSON
        s.scratch.queue.push_back(9);
        let j = Json::parse(&s.to_json().to_string()).unwrap();
        assert!(j.get("scratch").is_none(), "scratch serialized");
        let back = PprState::from_json(&j).unwrap();
        assert_eq!(back.source, 3);
        assert_eq!(back.estimate(1), 0.25);
        assert_eq!(back.residue(2), -0.5);
        assert_eq!(back.dirty, s.dirty);
        assert!(back.scratch.seeds.is_empty() && back.scratch.queue.is_empty());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut s = PprState::new(5);
        s.add_p(1, 0.3);
        s.add_r(2, 0.4);
        s.reset();
        assert_eq!(s.estimate_nnz(), 0);
        assert_eq!(s.residue(5), 1.0);
        assert_eq!(s.residue(2), 0.0);
    }
}
