//! Property-based tests for the PPR engine: the push invariant, the
//! dynamic-update invariant, and threshold/termination guarantees on
//! arbitrary graphs and event sequences.

use tsvd_graph::{Direction, DynGraph, EdgeEvent};
use tsvd_ppr::dynamic::{adjust_for_event, record_events};
use tsvd_ppr::exact::exact_ppr_row;
use tsvd_ppr::{forward_push, forward_push_fresh, PprState};
use tsvd_rt::check::{Checker, Gen};
use tsvd_rt::ensure;

const ALPHA: f64 = 0.2;

/// A small random directed graph as an edge list over `n` nodes.
fn random_graph(g: &mut Gen) -> (usize, Vec<(u32, u32)>) {
    let n = g.usize_in(3..15);
    let mut edges = Vec::new();
    let m = g.usize_in(1..40);
    while edges.len() < m {
        let u = g.u32_in(0..n as u32);
        let v = g.u32_in(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    (n, edges)
}

/// Max invariant violation `|π_s(x) − (p_s(x) + Σ_v r_s(v)·π_v(x))|`.
fn invariant_error(g: &DynGraph, st: &PprState) -> f64 {
    let n = g.num_nodes();
    let pis: Vec<Vec<f64>> = (0..n as u32)
        .map(|v| exact_ppr_row(g, Direction::Out, v, ALPHA, 1e-13))
        .collect();
    let truth = &pis[st.source as usize];
    (0..n)
        .map(|x| {
            let mut rhs = st.estimate(x as u32);
            for (v, rv) in st.residues() {
                rhs += rv * pis[v as usize][x];
            }
            (rhs - truth[x]).abs()
        })
        .fold(0.0, f64::max)
}

#[test]
fn push_invariant_on_arbitrary_graphs() {
    Checker::new(48).run("push_invariant_on_arbitrary_graphs", |gen| {
        let (n, edges) = random_graph(gen);
        let source = gen.u32_in(0..3).min(n as u32 - 1);
        let r_max_exp = gen.u32_in(2..5);
        let g = DynGraph::from_edges(n, &edges);
        let r_max = 10f64.powi(-(r_max_exp as i32));
        let mut st = PprState::new(source);
        forward_push(&g, Direction::Out, ALPHA, r_max, &mut st);
        ensure!(invariant_error(&g, &st) < 1e-9);
        // Threshold respected everywhere.
        for (u, r) in st.residues() {
            let d = g.out_degree(u).max(1);
            ensure!(r.abs() / d as f64 <= r_max + 1e-15);
        }
        // Mass conservation: estimates + residues sum to 1.
        let total: f64 = st.estimate_mass() + st.residues().map(|(_, r)| r).sum::<f64>();
        ensure!((total - 1.0).abs() < 1e-9, "mass {total}");
        Ok(())
    });
}

#[test]
fn dense_fresh_push_invariant() {
    Checker::new(48).run("dense_fresh_push_invariant", |gen| {
        let (n, edges) = random_graph(gen);
        let source = gen.u32_in(0..3).min(n as u32 - 1);
        let g = DynGraph::from_edges(n, &edges);
        let st = forward_push_fresh(&g, Direction::Out, ALPHA, 1e-3, source);
        ensure!(invariant_error(&g, &st) < 1e-9);
        Ok(())
    });
}

#[test]
fn dynamic_adjustment_restores_invariant_exactly() {
    Checker::new(48).run("dynamic_adjustment_restores_invariant_exactly", |gen| {
        let (n, edges) = random_graph(gen);
        let extra: Vec<((u32, u32), bool)> =
            gen.vec(1..12, |g| ((g.u32_in(0..15), g.u32_in(0..15)), g.bool()));
        let source = gen.u32_in(0..3).min(n as u32 - 1);
        let mut g = DynGraph::from_edges(n, &edges);
        let mut st = PprState::new(source);
        forward_push(&g, Direction::Out, ALPHA, 1e-2, &mut st);
        // Arbitrary insert/delete sequence (bounded to the node range).
        let events: Vec<EdgeEvent> = extra
            .into_iter()
            .filter_map(|((u, v), ins)| {
                let (u, v) = (u % n as u32, v % n as u32);
                if u == v {
                    return None;
                }
                Some(if ins {
                    EdgeEvent::insert(u, v)
                } else {
                    EdgeEvent::delete(u, v)
                })
            })
            .collect();
        let (recorded, _) = record_events(&mut g, &events);
        for ev in &recorded {
            adjust_for_event(&mut st, ev, ALPHA);
        }
        // The invariant must hold *exactly* (to rounding) — no push needed.
        ensure!(invariant_error(&g, &st) < 1e-8);
        Ok(())
    });
}

#[test]
fn reverse_direction_is_ppr_of_transpose() {
    Checker::new(48).run("reverse_direction_is_ppr_of_transpose", |gen| {
        let (n, edges) = random_graph(gen);
        let source = gen.u32_in(0..3).min(n as u32 - 1);
        let g = DynGraph::from_edges(n, &edges);
        // PPR on (g, In) == PPR on (transpose(g), Out).
        let mut gt = DynGraph::with_nodes(g.num_nodes());
        for (u, v) in g.edges() {
            gt.insert_edge(v, u);
        }
        let a = exact_ppr_row(&g, Direction::In, source, ALPHA, 1e-13);
        let b = exact_ppr_row(&gt, Direction::Out, source, ALPHA, 1e-13);
        for (x, y) in a.iter().zip(&b) {
            ensure!((x - y).abs() < 1e-10);
        }
        Ok(())
    });
}
