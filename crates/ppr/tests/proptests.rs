//! Property-based tests for the PPR engine: the push invariant, the
//! dynamic-update invariant, and threshold/termination guarantees on
//! arbitrary graphs and event sequences.

use proptest::prelude::*;
use tsvd_graph::{Direction, DynGraph, EdgeEvent};
use tsvd_ppr::dynamic::{adjust_for_event, record_events};
use tsvd_ppr::exact::exact_ppr_row;
use tsvd_ppr::{forward_push, forward_push_fresh, PprState};

const ALPHA: f64 = 0.2;

/// Strategy: a small random directed graph as an edge list over `n` nodes.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3usize..15).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32).prop_filter("no self-loop", |(u, v)| u != v),
            1..40,
        );
        (Just(n), edges)
    })
}

/// Max invariant violation `|π_s(x) − (p_s(x) + Σ_v r_s(v)·π_v(x))|`.
fn invariant_error(g: &DynGraph, st: &PprState) -> f64 {
    let n = g.num_nodes();
    let pis: Vec<Vec<f64>> = (0..n as u32)
        .map(|v| exact_ppr_row(g, Direction::Out, v, ALPHA, 1e-13))
        .collect();
    let truth = &pis[st.source as usize];
    (0..n)
        .map(|x| {
            let mut rhs = st.estimate(x as u32);
            for (v, rv) in st.residues() {
                rhs += rv * pis[v as usize][x];
            }
            (rhs - truth[x]).abs()
        })
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn push_invariant_on_arbitrary_graphs(
        (n, edges) in graph_strategy(),
        source in 0u32..3,
        r_max_exp in 2u32..5,
    ) {
        let g = DynGraph::from_edges(n, &edges);
        let source = source.min(n as u32 - 1);
        let r_max = 10f64.powi(-(r_max_exp as i32));
        let mut st = PprState::new(source);
        forward_push(&g, Direction::Out, ALPHA, r_max, &mut st);
        prop_assert!(invariant_error(&g, &st) < 1e-9);
        // Threshold respected everywhere.
        for (u, r) in st.residues() {
            let d = g.out_degree(u).max(1);
            prop_assert!(r.abs() / d as f64 <= r_max + 1e-15);
        }
        // Mass conservation: estimates + residues sum to 1.
        let total: f64 = st.estimate_mass()
            + st.residues().map(|(_, r)| r).sum::<f64>();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass {total}");
    }

    #[test]
    fn dense_fresh_push_invariant(
        (n, edges) in graph_strategy(),
        source in 0u32..3,
    ) {
        let g = DynGraph::from_edges(n, &edges);
        let source = source.min(n as u32 - 1);
        let st = forward_push_fresh(&g, Direction::Out, ALPHA, 1e-3, source);
        prop_assert!(invariant_error(&g, &st) < 1e-9);
    }

    #[test]
    fn dynamic_adjustment_restores_invariant_exactly(
        (n, edges) in graph_strategy(),
        extra in proptest::collection::vec(
            ((0u32..15, 0u32..15), prop::bool::ANY),
            1..12,
        ),
        source in 0u32..3,
    ) {
        let mut g = DynGraph::from_edges(n, &edges);
        let source = source.min(n as u32 - 1);
        let mut st = PprState::new(source);
        forward_push(&g, Direction::Out, ALPHA, 1e-2, &mut st);
        // Arbitrary insert/delete sequence (bounded to the node range).
        let events: Vec<EdgeEvent> = extra
            .into_iter()
            .filter_map(|((u, v), ins)| {
                let (u, v) = (u % n as u32, v % n as u32);
                if u == v {
                    return None;
                }
                Some(if ins { EdgeEvent::insert(u, v) } else { EdgeEvent::delete(u, v) })
            })
            .collect();
        let (recorded, _) = record_events(&mut g, &events);
        for ev in &recorded {
            adjust_for_event(&mut st, ev, ALPHA);
        }
        // The invariant must hold *exactly* (to rounding) — no push needed.
        prop_assert!(invariant_error(&g, &st) < 1e-8);
    }

    #[test]
    fn reverse_direction_is_ppr_of_transpose(
        (n, edges) in graph_strategy(),
        source in 0u32..3,
    ) {
        let g = DynGraph::from_edges(n, &edges);
        let source = source.min(n as u32 - 1);
        // PPR on (g, In) == PPR on (transpose(g), Out).
        let mut gt = DynGraph::with_nodes(g.num_nodes());
        for (u, v) in g.edges() {
            gt.insert_edge(v, u);
        }
        let a = exact_ppr_row(&g, Direction::In, source, ALPHA, 1e-13);
        let b = exact_ppr_row(&gt, Direction::Out, source, ALPHA, 1e-13);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }
}
