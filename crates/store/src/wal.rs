//! WAL segment files: checksummed, length-prefixed frames of flush
//! windows, same FNV-1a/LE framing idiom as `serve::net::wire`.
//!
//! # Frame layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       2     magic        0x4C57 ("WL")
//! 2       1     version      WAL_VERSION (currently 1)
//! 3       1     kind         FRAME_WINDOW (1) — the only kind so far
//! 4       8     epoch        global window counter this frame commits
//! 12      4     payload_len  must equal 4 + 9·n exactly
//! 16      8     checksum     FNV-1a 64 over header bytes [2, 16) then the
//!                            payload — every field except the magic is in
//!                            the checksummed range or is the checksum
//! 24      len   payload      u32 n, then n × (u32 u, u32 v, u8 kind)
//!                            with kind 0=insert 1=delete
//! ```
//!
//! A segment file `wal-<start_epoch>.seg` is a plain concatenation of
//! frames with contiguous epochs starting at `start_epoch` (20-digit
//! zero-padded, so lexicographic order is epoch order).
//!
//! # The torn-tail discipline
//!
//! The writer appends and fsyncs one frame at a time, so the only state a
//! crash can leave behind is a *prefix* of a frame at the end of the
//! **last** segment. [`scan_segment`] therefore distinguishes:
//!
//! * trailing bytes of the last segment too short to be a frame, or a
//!   valid header whose payload is cut off **with nothing decodable
//!   after it** — a torn tail: clean stop at the longest valid prefix;
//! * the same shapes anywhere else — interior corruption: a frame that
//!   decodes wrong *in front of* durable data can never be a crash
//!   artefact, so it is a typed [`StoreError::Corrupt`], never a silent
//!   truncation of committed windows. The "anything decodable after it"
//!   probe is what catches a flipped `payload_len` byte that would
//!   otherwise masquerade as a truncated tail;
//! * a *complete* frame that fails its checksum — corruption even at the
//!   tail (truncation shortens a frame; it cannot rewrite its bytes).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use tsvd_graph::{EdgeEvent, EventKind};
use tsvd_serve::net::wire::{fnv1a64, FNV_OFFSET};

use crate::StoreError;

/// First two bytes of every WAL frame: "WL" little-endian.
pub const WAL_MAGIC: u16 = 0x4C57;

/// Frame format version.
pub const WAL_VERSION: u8 = 1;

/// Frame kind: one post-coalesce flush window.
pub const FRAME_WINDOW: u8 = 1;

/// Fixed frame-header size in bytes.
pub const WAL_HEADER_LEN: usize = 24;

/// Maximum accepted payload size (64 MiB) — a header announcing more is
/// corrupt by definition, long before allocation.
pub const WAL_MAX_PAYLOAD: u32 = 64 << 20;

/// Append one frame for `epoch` carrying `events` to `out`.
pub fn encode_frame(epoch: u64, events: &[EdgeEvent], out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    out.push(WAL_VERSION);
    out.push(FRAME_WINDOW);
    out.extend_from_slice(&epoch.to_le_bytes());
    let payload_len = 4 + events.len() as u32 * 9;
    debug_assert!(payload_len <= WAL_MAX_PAYLOAD, "window exceeds frame cap");
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(&[0u8; 8]); // checksum backfilled below
    let payload_start = out.len();
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for e in events {
        out.extend_from_slice(&e.u.to_le_bytes());
        out.extend_from_slice(&e.v.to_le_bytes());
        out.push(match e.kind {
            EventKind::Insert => 0,
            EventKind::Delete => 1,
        });
    }
    let crc = fnv1a64(
        fnv1a64(FNV_OFFSET, &out[start + 2..start + 16]),
        &out[payload_start..],
    );
    out[start + 16..start + 24].copy_from_slice(&crc.to_le_bytes());
}

/// Result of scanning one segment.
pub struct ScannedSegment {
    /// Decoded `(epoch, window)` frames, in file order.
    pub frames: Vec<(u64, Vec<EdgeEvent>)>,
    /// Byte length of the longest valid frame prefix (equals the file
    /// length unless the tail was torn).
    pub valid_len: u64,
    /// Whether a torn tail was dropped (only ever set on the last
    /// segment).
    pub torn: bool,
}

/// Outcome of inspecting the frame at one offset.
enum FrameAt {
    Ok {
        epoch: u64,
        events: Vec<EdgeEvent>,
        len: usize,
    },
    /// Not enough bytes for a complete frame; a valid header may or may
    /// not be present.
    Incomplete,
    Bad(&'static str),
}

fn frame_at(bytes: &[u8]) -> FrameAt {
    if bytes.len() < WAL_HEADER_LEN {
        return FrameAt::Incomplete;
    }
    let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
    if magic != WAL_MAGIC {
        return FrameAt::Bad("bad frame magic");
    }
    if bytes[2] != WAL_VERSION {
        return FrameAt::Bad("unsupported frame version");
    }
    if bytes[3] != FRAME_WINDOW {
        return FrameAt::Bad("unknown frame kind");
    }
    let payload_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if payload_len > WAL_MAX_PAYLOAD {
        return FrameAt::Bad("oversized frame");
    }
    let total = WAL_HEADER_LEN + payload_len as usize;
    if bytes.len() < total {
        return FrameAt::Incomplete;
    }
    let payload = &bytes[WAL_HEADER_LEN..total];
    let want = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if fnv1a64(fnv1a64(FNV_OFFSET, &bytes[2..16]), payload) != want {
        return FrameAt::Bad("frame checksum mismatch");
    }
    // Payload shape: the count must account for the length exactly.
    if payload.len() < 4 {
        return FrameAt::Bad("payload shorter than its count");
    }
    let n = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    if payload.len() != 4 + n * 9 {
        return FrameAt::Bad("payload length does not match event count");
    }
    let mut events = Vec::with_capacity(n);
    for i in 0..n {
        let o = 4 + i * 9;
        let u = u32::from_le_bytes(payload[o..o + 4].try_into().unwrap());
        let v = u32::from_le_bytes(payload[o + 4..o + 8].try_into().unwrap());
        let kind = match payload[o + 8] {
            0 => EventKind::Insert,
            1 => EventKind::Delete,
            _ => return FrameAt::Bad("bad event kind"),
        };
        events.push(EdgeEvent { u, v, kind });
    }
    let epoch = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    FrameAt::Ok {
        epoch,
        events,
        len: total,
    }
}

/// Is there any complete, checksum-valid frame starting anywhere in
/// `bytes`? Used to tell a genuinely torn tail (nothing decodable beyond
/// the incomplete frame) from a flipped length byte in front of durable
/// frames.
fn any_valid_frame_within(bytes: &[u8]) -> bool {
    let mut o = 0;
    while o + WAL_HEADER_LEN <= bytes.len() {
        // Cheap magic prefilter before attempting a full decode.
        if u16::from_le_bytes([bytes[o], bytes[o + 1]]) == WAL_MAGIC {
            if let FrameAt::Ok { .. } = frame_at(&bytes[o..]) {
                return true;
            }
        }
        o += 1;
    }
    false
}

/// Decode every frame in one segment, applying the torn-tail discipline
/// (module docs). `is_last` marks the newest segment — the only place a
/// crash tail can legitimately live.
pub fn scan_segment(name: &str, bytes: &[u8], is_last: bool) -> Result<ScannedSegment, StoreError> {
    let corrupt = |offset: usize, what: &'static str| StoreError::Corrupt {
        segment: name.to_string(),
        offset: offset as u64,
        what,
    };
    let mut frames = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return Ok(ScannedSegment {
                frames,
                valid_len: pos as u64,
                torn: false,
            });
        }
        match frame_at(&bytes[pos..]) {
            FrameAt::Ok { epoch, events, len } => {
                frames.push((epoch, events));
                pos += len;
            }
            FrameAt::Incomplete => {
                if !is_last {
                    return Err(corrupt(pos, "incomplete frame in non-final segment"));
                }
                if any_valid_frame_within(&bytes[pos + 1..]) {
                    return Err(corrupt(pos, "undecodable frame in front of valid frames"));
                }
                return Ok(ScannedSegment {
                    frames,
                    valid_len: pos as u64,
                    torn: true,
                });
            }
            FrameAt::Bad(what) => return Err(corrupt(pos, what)),
        }
    }
}

/// Path of the segment whose first frame carries `start_epoch`.
pub fn segment_path(dir: &Path, start_epoch: u64) -> PathBuf {
    dir.join(format!("wal-{start_epoch:020}.seg"))
}

/// All WAL segments in `dir`, sorted by start epoch (= file order).
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        else {
            continue;
        };
        let Ok(start) = stem.parse::<u64>() else {
            continue;
        };
        out.push((start, entry.path()));
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(epoch: u64, events: &[EdgeEvent]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame(epoch, events, &mut out);
        out
    }

    fn ev(k: u32) -> EdgeEvent {
        if k.is_multiple_of(2) {
            EdgeEvent::insert(k, k + 1)
        } else {
            EdgeEvent::delete(k, k + 1)
        }
    }

    #[test]
    fn frames_round_trip_including_empty_windows() {
        let mut buf = Vec::new();
        encode_frame(1, &[ev(0), ev(1), ev(2)], &mut buf);
        encode_frame(2, &[], &mut buf);
        encode_frame(3, &[ev(7)], &mut buf);
        let s = scan_segment("t", &buf, true).unwrap();
        assert!(!s.torn);
        assert_eq!(s.valid_len, buf.len() as u64);
        assert_eq!(s.frames.len(), 3);
        assert_eq!(s.frames[0], (1, vec![ev(0), ev(1), ev(2)]));
        assert_eq!(s.frames[1], (2, vec![]));
        assert_eq!(s.frames[2], (3, vec![ev(7)]));
    }

    #[test]
    fn truncation_of_the_final_frame_is_a_clean_stop() {
        let mut buf = frame_bytes(1, &[ev(0), ev(1)]);
        let keep = buf.len();
        buf.extend(frame_bytes(2, &[ev(2), ev(3), ev(4)]));
        for cut in keep..buf.len() {
            let s = scan_segment("t", &buf[..cut], true)
                .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(s.frames.len(), 1, "cut at {cut}");
            assert_eq!(s.valid_len, keep as u64, "cut at {cut}");
            assert_eq!(s.torn, cut != keep);
        }
    }

    #[test]
    fn interior_byte_flips_are_typed_errors() {
        let mut buf = frame_bytes(5, &[ev(0), ev(1)]);
        let interior = buf.len();
        buf.extend(frame_bytes(6, &[ev(2)]));
        buf.extend(frame_bytes(7, &[ev(3), ev(4)]));
        for byte in 0..interior {
            for flip in [0x01u8, 0x80] {
                let mut bad = buf.clone();
                bad[byte] ^= flip;
                let err = scan_segment("t", &bad, true);
                assert!(
                    err.is_err(),
                    "flip {flip:#x} of interior byte {byte} accepted"
                );
            }
        }
    }

    #[test]
    fn partial_tail_in_a_non_final_segment_is_corrupt() {
        let mut buf = frame_bytes(1, &[ev(0)]);
        let keep = buf.len();
        buf.extend(frame_bytes(2, &[ev(1)]));
        let cut = &buf[..buf.len() - 3];
        assert!(scan_segment("t", cut, true).unwrap().torn);
        match scan_segment("t", cut, false) {
            Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, keep as u64),
            other => panic!(
                "expected Corrupt, got {:?}",
                other.err().map(|e| e.to_string())
            ),
        }
    }

    #[test]
    fn complete_frame_with_bad_checksum_is_corrupt_even_at_the_tail() {
        let mut buf = frame_bytes(1, &[ev(0)]);
        let last = buf.len() - 1;
        buf[last] ^= 0x40; // payload byte of the final (complete) frame
        assert!(scan_segment("t", &buf, true).is_err());
    }

    #[test]
    fn decoder_never_panics_on_fuzzed_bytes() {
        use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(0x57A1);
        let mut buf = Vec::new();
        for e in 1..5u64 {
            encode_frame(e, &[ev(e as u32), ev(e as u32 + 9)], &mut buf);
        }
        for _ in 0..2000 {
            let mut bad = buf.clone();
            let flips = rng.gen_range(1..6usize);
            for _ in 0..flips {
                let i = rng.gen_range(0..bad.len());
                bad[i] ^= rng.gen_range(1..256usize) as u8;
            }
            let cut = rng.gen_range(0..bad.len() + 1);
            // Must return, never panic; content is unspecified.
            let _ = scan_segment("t", &bad[..cut], true);
            let _ = scan_segment("t", &bad[..cut], false);
        }
        // Pure random noise too.
        for _ in 0..500 {
            let len = rng.gen_range(0..200usize);
            let noise: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256usize) as u8).collect();
            let _ = scan_segment("t", &noise, true);
        }
    }
}
