//! Epoch checkpoints: atomic JSON snapshots of the whole `TenantHost`,
//! plus the compaction rule that lets them truncate the WAL.
//!
//! A checkpoint `checkpoint-<epoch>.json` (20-digit zero-padded epoch)
//! holds `{"epoch": E, "host": <TenantHost JSON>}` where the host has
//! every window `≤ E` applied and none beyond — exactly the state the
//! serving reactor sees after draining its pipelines at epoch `E`. Files
//! are written through [`tsvd_core::atomic_write`] (tmp + rename + dir
//! fsync), so a crash mid-checkpoint leaves the previous checkpoint
//! intact; [`load_latest`] additionally falls back to an older file if
//! the newest fails to parse.
//!
//! # Compaction rule
//!
//! After a checkpoint at `E`, replay only ever needs windows `> E`.
//! Segments are dropped whole: segment `i` (frames `start_i ..
//! start_{i+1}`) is deletable iff `start_{i+1} ≤ E + 1`, i.e. every frame
//! it holds is `≤ E`. The last segment is never deleted — it is the
//! writer's append tail. Older checkpoint files are removed at the same
//! time (the newest valid one wins on load anyway).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use tsvd_core::atomic_write;
use tsvd_rt::json::{field, Json};

use crate::{wal, StoreError};

/// Path of the checkpoint taken at `epoch`.
pub fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("checkpoint-{epoch:020}.json"))
}

/// All checkpoints in `dir`, sorted by epoch ascending.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(epoch) = stem.parse::<u64>() else {
            continue;
        };
        out.push((epoch, entry.path()));
    }
    out.sort();
    Ok(out)
}

/// Atomically write the checkpoint for `epoch` (host already serialised).
pub fn write_checkpoint(dir: &Path, epoch: u64, host: &Json) -> Result<(), StoreError> {
    let body = Json::object([("epoch", Json::Int(epoch as i64)), ("host", host.clone())]);
    atomic_write(&checkpoint_path(dir, epoch), body.to_string().as_bytes())
        .map_err(|e| StoreError::BadCheckpoint(format!("checkpoint write failed: {e}")))
}

/// Load the newest checkpoint that parses, falling back across older ones
/// (an unparseable newest checkpoint means the atomic rename published a
/// file some later corruption damaged — the previous epoch is still a
/// correct, just older, recovery point). Returns `(epoch, host_json)`.
pub fn load_latest(dir: &Path) -> Result<(u64, Json), StoreError> {
    let all = list_checkpoints(dir)?;
    if all.is_empty() {
        return Err(StoreError::NoCheckpoint);
    }
    let mut last_err = String::new();
    for (epoch, path) in all.iter().rev() {
        match read_checkpoint(*epoch, path) {
            Ok(host) => return Ok((*epoch, host)),
            Err(why) => last_err = why,
        }
    }
    Err(StoreError::BadCheckpoint(format!(
        "no checkpoint in {} parses; newest failure: {last_err}",
        dir.display()
    )))
}

fn read_checkpoint(epoch: u64, path: &Path) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    let named: u64 = field(&json, "epoch").map_err(|e| format!("{e:?}"))?;
    if named != epoch {
        return Err(format!(
            "file named for epoch {epoch} but its body says {named}"
        ));
    }
    json.get("host")
        .cloned()
        .ok_or_else(|| "missing 'host' field".to_string())
}

/// Drop checkpoints older than `epoch` and every WAL segment whose frames
/// all fall at or before it (see module docs).
pub fn compact(dir: &Path, epoch: u64) -> io::Result<()> {
    for (e, path) in list_checkpoints(dir)? {
        if e < epoch {
            fs::remove_file(path)?;
        }
    }
    let segments = wal::list_segments(dir)?;
    for i in 0..segments.len().saturating_sub(1) {
        let next_start = segments[i + 1].0;
        if next_start <= epoch + 1 {
            fs::remove_file(&segments[i].1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "tsvd-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn host_stub(mark: i64) -> Json {
        Json::object([("mark", Json::Int(mark))])
    }

    #[test]
    fn latest_valid_checkpoint_wins_with_fallback() {
        let dir = tmpdir("fallback");
        write_checkpoint(&dir, 3, &host_stub(3)).unwrap();
        write_checkpoint(&dir, 7, &host_stub(7)).unwrap();
        let (e, host) = load_latest(&dir).unwrap();
        assert_eq!(e, 7);
        assert_eq!(host.get("mark"), Some(&Json::Int(7)));
        // Damage the newest: the older one is the recovery point.
        fs::write(checkpoint_path(&dir, 7), b"{ not json").unwrap();
        let (e, host) = load_latest(&dir).unwrap();
        assert_eq!(e, 3);
        assert_eq!(host.get("mark"), Some(&Json::Int(3)));
        // Damage both: typed failure, not a panic.
        fs::write(checkpoint_path(&dir, 3), b"").unwrap();
        assert!(matches!(
            load_latest(&dir),
            Err(StoreError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn epoch_mismatch_between_name_and_body_is_rejected() {
        let dir = tmpdir("mismatch");
        write_checkpoint(&dir, 5, &host_stub(5)).unwrap();
        let renamed = checkpoint_path(&dir, 9);
        fs::rename(checkpoint_path(&dir, 5), &renamed).unwrap();
        assert!(matches!(
            load_latest(&dir),
            Err(StoreError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn compaction_drops_covered_segments_but_never_the_tail() {
        let dir = tmpdir("compact");
        // Segments starting at epochs 1, 4, 8 — frames 1..=3, 4..=7, 8...
        for start in [1u64, 4, 8] {
            fs::write(wal::segment_path(&dir, start), b"").unwrap();
        }
        write_checkpoint(&dir, 2, &host_stub(2)).unwrap();
        write_checkpoint(&dir, 5, &host_stub(5)).unwrap();
        compact(&dir, 5).unwrap();
        // Segment 1 covers 1..=3 ≤ 5: gone. Segment 4 covers 4..=7 — frame
        // 6 and 7 are > 5, kept. Segment 8 is the tail, kept.
        let starts: Vec<u64> = wal::list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(starts, vec![4, 8]);
        let cks: Vec<u64> = list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        assert_eq!(cks, vec![5]);
        // A checkpoint at 7 covers segment 4..=7 too; 8 stays as the tail.
        compact(&dir, 7).unwrap();
        let starts: Vec<u64> = wal::list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(starts, vec![8]);
    }
}
