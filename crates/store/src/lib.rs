//! # tsvd-store
//!
//! Durability for the Tree-SVD serving layer: a write-ahead log of flush
//! windows, epoch checkpoints with log compaction, and crash recovery that
//! lands on a **bitwise-identical** published embedding.
//!
//! The layering deliberately mirrors the serving invariant. Every layer
//! below the reactor is deterministic — the same post-coalesce windows
//! replayed in the same order produce the same bits at any shard count,
//! thread count, or tenant mix. So durability only has to preserve two
//! things: the host state at some epoch (a checkpoint) and the exact
//! window sequence after it (the WAL). Recovery is then *replay*, not
//! reconstruction:
//!
//! ```text
//!   reactor flush:   append_window(epoch, window)   [fsync]   ── WAL
//!                    └─ then record + stage + commit + publish
//!   checkpoint:      atomic JSON snapshot of the whole TenantHost
//!                    └─ then drop WAL segments entirely ≤ epoch
//!   recovery:        load latest valid checkpoint
//!                    └─ replay WAL frames after it, verbatim
//! ```
//!
//! Because the window is durable *before* its epoch is published, a crash
//! at any instant loses at most un-acked work: every epoch a client ever
//! observed is reproduced exactly by [`recover`].
//!
//! * [`wal`] — segment files of checksummed, length-prefixed frames
//!   (FNV-1a/LE framing, same idiom as `serve::net::wire`), with the
//!   torn-tail discipline: a truncated final frame is a clean stop, a
//!   corrupted interior frame is a typed [`StoreError::Corrupt`].
//! * [`checkpoint`] — `checkpoint-<epoch>.json` snapshots written via
//!   `tsvd_core::atomic_write` (tmp + rename), latest-valid-wins load
//!   with fallback, and the compaction rule.
//! * [`WalStore`] — the [`DurabilitySink`] implementation the serving
//!   reactor drives ([`EmbeddingServer::start_with_store`]); [`recover`]
//!   rebuilds a host from disk and returns a store positioned to append.
//!
//! [`EmbeddingServer::start_with_store`]: tsvd_serve::EmbeddingServer::start_with_store

pub mod checkpoint;
pub mod wal;

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use tsvd_graph::EdgeEvent;
use tsvd_rt::json::{FromJson, Json, ToJson};
use tsvd_serve::{DurabilitySink, TenantHost};

/// Where and how a store keeps its files.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding WAL segments and checkpoints (created on
    /// [`WalStore::create`] if missing).
    pub dir: PathBuf,
    /// Rotate to a new WAL segment once the current one reaches this many
    /// bytes. Compaction drops whole segments, so smaller segments compact
    /// sooner at the cost of more files.
    pub segment_bytes: u64,
}

impl StoreConfig {
    /// A config rooted at `dir` with the default 4 MiB segment size.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
        }
    }
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A WAL segment holds bytes that cannot be a valid frame sequence —
    /// an interior corruption, never a clean crash tail (those are
    /// tolerated and truncated instead).
    Corrupt {
        /// File name of the offending segment.
        segment: String,
        /// Byte offset of the frame the decoder rejected.
        offset: u64,
        /// What was wrong with it.
        what: &'static str,
    },
    /// A checkpoint file exists but cannot be decoded (and no older one
    /// could either), or its content contradicts the log.
    BadCheckpoint(String),
    /// The directory holds no checkpoint at all — nothing to recover from.
    NoCheckpoint,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt {
                segment,
                offset,
                what,
            } => write!(f, "corrupt WAL segment {segment} at byte {offset}: {what}"),
            StoreError::BadCheckpoint(why) => write!(f, "bad checkpoint: {why}"),
            StoreError::NoCheckpoint => write!(f, "no checkpoint found in store directory"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

struct OpenSegment {
    file: File,
    written: u64,
}

/// The durable log: WAL segments plus epoch checkpoints in one directory.
///
/// Implements [`DurabilitySink`], so the serving reactor drives it
/// directly: every post-coalesce flush window is appended and fsync'd
/// *before* the reactor records it, and periodic checkpoints compact the
/// log. Created fresh with [`WalStore::create`] or repositioned over an
/// existing directory by [`recover`].
pub struct WalStore {
    cfg: StoreConfig,
    seg: Option<OpenSegment>,
    /// Epoch the next appended frame must carry (appends are contiguous).
    next_epoch: u64,
}

impl WalStore {
    /// Initialise `cfg.dir` as a fresh store: create the directory and
    /// write the initial checkpoint of `host` (usually at epoch 0, but a
    /// pre-warmed host checkpoints at its current epoch). Refuses a
    /// directory that already holds store files — recover those instead.
    pub fn create(cfg: StoreConfig, host: &TenantHost) -> Result<WalStore, StoreError> {
        Self::create_at(cfg, host.batches_recorded(), &host.to_json())
    }

    /// [`WalStore::create`] from an already-serialised host at `epoch`.
    pub fn create_at(cfg: StoreConfig, epoch: u64, host: &Json) -> Result<WalStore, StoreError> {
        fs::create_dir_all(&cfg.dir)?;
        if !checkpoint::list_checkpoints(&cfg.dir)?.is_empty()
            || !wal::list_segments(&cfg.dir)?.is_empty()
        {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "store directory already holds WAL/checkpoint files; use recover()",
            )));
        }
        checkpoint::write_checkpoint(&cfg.dir, epoch, host)?;
        Ok(WalStore {
            cfg,
            seg: None,
            next_epoch: epoch + 1,
        })
    }

    /// The epoch the next [`append_window`](WalStore::append_window) must
    /// carry.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    fn open_segment(&mut self, start_epoch: u64) -> io::Result<()> {
        let path = wal::segment_path(&self.cfg.dir, start_epoch);
        let file = File::create(&path)?;
        // The segment must itself survive a crash: fsync the directory so
        // the new name is durable before any frame relies on it.
        fsync_dir(&self.cfg.dir)?;
        self.seg = Some(OpenSegment { file, written: 0 });
        Ok(())
    }
}

impl DurabilitySink for WalStore {
    /// Append one frame and fsync it. When this returns `Ok`, the window
    /// is durable: [`recover`] will replay it.
    fn append_window(&mut self, epoch: u64, events: &[EdgeEvent]) -> io::Result<()> {
        assert_eq!(
            epoch, self.next_epoch,
            "WAL appends must be contiguous (expected epoch {}, got {epoch})",
            self.next_epoch
        );
        let rotate = match &self.seg {
            None => true,
            Some(seg) => seg.written >= self.cfg.segment_bytes,
        };
        if rotate {
            self.open_segment(epoch)?;
        }
        let mut buf = Vec::with_capacity(wal::WAL_HEADER_LEN + 4 + events.len() * 9);
        wal::encode_frame(epoch, events, &mut buf);
        let seg = self.seg.as_mut().expect("segment just opened");
        seg.file.write_all(&buf)?;
        seg.file.sync_data()?;
        seg.written += buf.len() as u64;
        self.next_epoch += 1;
        Ok(())
    }

    /// Write the checkpoint atomically, then compact: drop older
    /// checkpoints and every WAL segment whose frames all fall at or
    /// before `epoch` (the last segment is always kept — it is the append
    /// tail).
    fn checkpoint(&mut self, epoch: u64, host: &Json) -> io::Result<()> {
        checkpoint::write_checkpoint(&self.cfg.dir, epoch, host)
            .map_err(|e| io::Error::other(e.to_string()))?;
        checkpoint::compact(&self.cfg.dir, epoch)?;
        Ok(())
    }
}

/// What [`recover`] rebuilt from disk.
pub struct Recovered {
    /// The host, advanced to the last durable epoch — bitwise identical to
    /// the host the crashed server had published at that epoch.
    pub host: TenantHost,
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// WAL windows replayed on top of the checkpoint.
    pub windows_replayed: u64,
    /// A store positioned to append the next window (hand it back to
    /// [`EmbeddingServer::start_host_with_store`]).
    ///
    /// [`EmbeddingServer::start_host_with_store`]: tsvd_serve::EmbeddingServer::start_host_with_store
    pub store: WalStore,
}

/// Rebuild a host from `cfg.dir`: load the latest valid checkpoint, then
/// replay every WAL window after it through the host's engines. A torn
/// final frame (the crash tail) is truncated away; interior corruption is
/// a typed [`StoreError::Corrupt`].
pub fn recover(cfg: StoreConfig) -> Result<Recovered, StoreError> {
    let (ck_epoch, host_json) = checkpoint::load_latest(&cfg.dir)?;
    let mut host = TenantHost::from_json(&host_json)
        .map_err(|e| StoreError::BadCheckpoint(format!("host decode failed: {e:?}")))?;
    if host.batches_recorded() != ck_epoch {
        return Err(StoreError::BadCheckpoint(format!(
            "checkpoint named epoch {ck_epoch} but its host is at {}",
            host.batches_recorded()
        )));
    }
    let windows = scan_log(&cfg.dir, true)?;
    let mut replayed = 0u64;
    for (epoch, events) in &windows {
        if *epoch <= ck_epoch {
            continue;
        }
        let expected = host.batches_recorded() + 1;
        if *epoch != expected {
            return Err(StoreError::BadCheckpoint(format!(
                "log gap: next durable window is epoch {epoch} but replay needs {expected}"
            )));
        }
        host.apply_batch(events);
        replayed += 1;
    }
    let next = host.batches_recorded() + 1;
    Ok(Recovered {
        host,
        checkpoint_epoch: ck_epoch,
        windows_replayed: replayed,
        store: WalStore {
            cfg,
            seg: None,
            next_epoch: next,
        },
    })
}

/// Every durable window in `dir`'s WAL, oldest first, tolerating a torn
/// tail — the offline ground truth a recovery is compared against.
pub fn read_windows(dir: &Path) -> Result<Vec<(u64, Vec<EdgeEvent>)>, StoreError> {
    scan_log(dir, false)
}

/// Scan all segments in order, enforcing global epoch contiguity; when
/// `truncate_tail` is set, physically cut a torn final frame off the last
/// segment so future appends start at a clean boundary.
fn scan_log(dir: &Path, truncate_tail: bool) -> Result<Vec<(u64, Vec<EdgeEvent>)>, StoreError> {
    let segments = wal::list_segments(dir)?;
    let mut out: Vec<(u64, Vec<EdgeEvent>)> = Vec::new();
    let last = segments.len().wrapping_sub(1);
    for (i, (start_epoch, path)) in segments.iter().enumerate() {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let bytes = fs::read(path)?;
        let scanned = wal::scan_segment(&name, &bytes, i == last)?;
        for (j, (epoch, events)) in scanned.frames.into_iter().enumerate() {
            let expected = match out.last() {
                Some((prev, _)) => prev + 1,
                None => *start_epoch,
            };
            if j == 0 && epoch != *start_epoch {
                return Err(StoreError::Corrupt {
                    segment: name.clone(),
                    offset: 0,
                    what: "first frame epoch does not match segment name",
                });
            }
            if epoch != expected {
                return Err(StoreError::Corrupt {
                    segment: name.clone(),
                    offset: 0,
                    what: "epoch gap between frames",
                });
            }
            out.push((epoch, events));
        }
        if scanned.torn && truncate_tail {
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(scanned.valid_len)?;
            f.sync_all()?;
        }
    }
    Ok(out)
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync is how a new/renamed name becomes durable on unix;
    // opening a directory read-only for sync is not portable everywhere,
    // so failures here are not fatal to the data path itself.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
    use tsvd_graph::DynGraph;
    use tsvd_ppr::PprConfig;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "tsvd-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn tree_cfg() -> TreeSvdConfig {
        TreeSvdConfig {
            dim: 6,
            branching: 2,
            num_blocks: 4,
            oversample: 4,
            power_iters: 1,
            level1: Level1Method::Randomized,
            policy: UpdatePolicy::Lazy { delta: 0.4 },
            partition: PartitionStrategy::EqualWidth,
            seed: 3,
        }
    }

    fn small_host() -> TenantHost {
        let mut g = DynGraph::with_nodes(40);
        for i in 0..40u32 {
            g.insert_edge(i, (i + 1) % 40);
            g.insert_edge(i, (i + 7) % 40);
        }
        let mut h = TenantHost::new(&g);
        h.register(
            0,
            &(0..6).collect::<Vec<_>>(),
            2,
            PprConfig::default(),
            tree_cfg(),
        )
        .unwrap();
        h
    }

    fn window(k: u32) -> Vec<EdgeEvent> {
        vec![
            EdgeEvent::insert(k % 40, (k * 3 + 11) % 40),
            EdgeEvent::delete(k % 40, (k + 1) % 40),
        ]
    }

    #[test]
    fn create_append_recover_is_bitwise_identical() {
        let dir = tmpdir("roundtrip");
        let mut live = small_host();
        let mut store = WalStore::create(StoreConfig::new(&dir), &live).unwrap();
        for k in 0..5u32 {
            let w = window(k);
            store.append_window(k as u64 + 1, &w).unwrap();
            live.apply_batch(&w);
        }
        // No checkpoint beyond the initial one: recovery replays all 5.
        let rec = recover(StoreConfig::new(&dir)).unwrap();
        assert_eq!(rec.checkpoint_epoch, 0);
        assert_eq!(rec.windows_replayed, 5);
        assert_eq!(rec.host.batches_recorded(), 5);
        assert_eq!(rec.store.next_epoch(), 6);
        let a = live.tagged(0).unwrap();
        let b = rec.host.tagged(0).unwrap();
        assert_eq!(
            a.left().sub(b.left()).max_abs(),
            0.0,
            "recovered embedding diverged"
        );
    }

    #[test]
    fn checkpoint_compacts_whole_segments_and_recovery_uses_it() {
        let dir = tmpdir("compact");
        let mut live = small_host();
        let mut cfg = StoreConfig::new(&dir);
        cfg.segment_bytes = 1; // rotate every frame: one segment per window
        let mut store = WalStore::create(cfg.clone(), &live).unwrap();
        for k in 0..6u32 {
            let w = window(k);
            store.append_window(k as u64 + 1, &w).unwrap();
            live.apply_batch(&w);
            if k == 3 {
                store.checkpoint(4, &live.to_json()).unwrap();
            }
        }
        // At checkpoint time segments 1..=3 hold only epochs ≤ 4 and are
        // dropped; segment 4 was the append tail then, so it survives.
        let starts: Vec<u64> = wal::list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(starts, vec![4, 5, 6]);
        let cks: Vec<u64> = checkpoint::list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        assert_eq!(cks, vec![4]);
        let rec = recover(StoreConfig::new(&dir)).unwrap();
        assert_eq!(rec.checkpoint_epoch, 4);
        assert_eq!(rec.windows_replayed, 2);
        let a = live.tagged(0).unwrap();
        let b = rec.host.tagged(0).unwrap();
        assert_eq!(a.left().sub(b.left()).max_abs(), 0.0);
    }

    #[test]
    fn recovered_store_appends_into_a_fresh_segment() {
        let dir = tmpdir("reappend");
        let mut live = small_host();
        let mut store = WalStore::create(StoreConfig::new(&dir), &live).unwrap();
        for k in 0..3u32 {
            let w = window(k);
            store.append_window(k as u64 + 1, &w).unwrap();
            live.apply_batch(&w);
        }
        drop(store);
        let mut rec = recover(StoreConfig::new(&dir)).unwrap();
        let w = window(9);
        rec.store.append_window(4, &w).unwrap();
        live.apply_batch(&w);
        let all = read_windows(&dir).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all.last().unwrap().0, 4);
        let rec2 = recover(StoreConfig::new(&dir)).unwrap();
        assert_eq!(rec2.host.batches_recorded(), 4);
        let a = live.tagged(0).unwrap();
        let b = rec2.host.tagged(0).unwrap();
        assert_eq!(a.left().sub(b.left()).max_abs(), 0.0);
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = tmpdir("refuse");
        let live = small_host();
        let _store = WalStore::create(StoreConfig::new(&dir), &live).unwrap();
        match WalStore::create(StoreConfig::new(&dir), &live) {
            Err(StoreError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::AlreadyExists),
            Err(other) => panic!("expected AlreadyExists, got {other:?}"),
            Ok(_) => panic!("created over an existing store"),
        }
    }

    #[test]
    fn recover_on_empty_dir_is_typed() {
        let dir = tmpdir("empty");
        fs::create_dir_all(&dir).unwrap();
        match recover(StoreConfig::new(&dir)) {
            Err(StoreError::NoCheckpoint) => {}
            other => panic!("expected NoCheckpoint, got {:?}", other.err()),
        }
    }
}
