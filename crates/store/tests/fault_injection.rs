//! Fault-injection battery for the WAL + recovery path.
//!
//! Three properties, exercised end to end through [`tsvd_store::recover`]
//! (not just the frame decoder):
//!
//! 1. **Truncation = clean stop.** Cutting the log at *every* byte offset
//!    of the final frame recovers to the longest valid prefix, bitwise
//!    equal to an offline replay of that prefix — and physically truncates
//!    the tail so the store can append again.
//! 2. **Interior corruption = typed error.** Flipping any single byte of
//!    an interior frame yields [`StoreError::Corrupt`], never a panic and
//!    never a silently shortened log.
//! 3. **No panics, ever.** Arbitrary mutations (random flips + cuts) may
//!    recover or fail, but must always return.

use std::fs;
use std::path::{Path, PathBuf};

use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::PprConfig;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::{DurabilitySink, TenantHost};
use tsvd_store::{recover, wal, StoreConfig, StoreError, WalStore};

/// Frames below carry exactly 2 events: 24-byte header + 4 + 2·9 payload.
const FRAME_LEN: usize = 46;
const WINDOWS: usize = 4;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "tsvd-fault-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

fn tree_cfg() -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 6,
        branching: 2,
        num_blocks: 4,
        oversample: 4,
        power_iters: 1,
        level1: Level1Method::Randomized,
        policy: UpdatePolicy::Lazy { delta: 0.4 },
        partition: PartitionStrategy::EqualWidth,
        seed: 11,
    }
}

/// Deterministic fresh host — callable any number of times for offline
/// ground-truth replays.
fn fresh_host() -> TenantHost {
    let mut g = DynGraph::with_nodes(40);
    for i in 0..40u32 {
        g.insert_edge(i, (i + 1) % 40);
        g.insert_edge(i, (i + 9) % 40);
    }
    let mut h = TenantHost::new(&g);
    h.register(
        0,
        &(0..6).collect::<Vec<_>>(),
        2,
        PprConfig::default(),
        tree_cfg(),
    )
    .unwrap();
    h
}

fn window(k: u32) -> Vec<EdgeEvent> {
    vec![
        EdgeEvent::insert(k % 40, (k * 5 + 13) % 40),
        EdgeEvent::delete((k + 2) % 40, (k + 3) % 40),
    ]
}

/// Build a store with [`WINDOWS`] appended windows; `segment_bytes`
/// controls whether they share one segment or get one each.
fn seed_store(dir: &Path, segment_bytes: u64) {
    let host = fresh_host();
    let mut cfg = StoreConfig::new(dir);
    cfg.segment_bytes = segment_bytes;
    let mut store = WalStore::create(cfg, &host).unwrap();
    for k in 0..WINDOWS as u32 {
        store.append_window(k as u64 + 1, &window(k)).unwrap();
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The host ground truth after the first `n` windows, built offline.
fn offline_after(n: usize) -> TenantHost {
    let mut h = fresh_host();
    for k in 0..n as u32 {
        h.apply_batch(&window(k));
    }
    h
}

fn assert_bitwise(a: &TenantHost, b: &TenantHost, ctx: &str) {
    assert_eq!(a.batches_recorded(), b.batches_recorded(), "{ctx}");
    let ta = a.tagged(0).unwrap();
    let tb = b.tagged(0).unwrap();
    assert_eq!(
        ta.left().sub(tb.left()).max_abs(),
        0.0,
        "{ctx}: embeddings diverged"
    );
}

#[test]
fn truncating_the_final_frame_recovers_the_longest_valid_prefix() {
    let base = tmpdir("trunc-base");
    seed_store(&base, u64::MAX); // one segment holds all frames
    let (_, seg_path) = wal::list_segments(&base).unwrap().pop().unwrap();
    let full = fs::metadata(&seg_path).unwrap().len() as usize;
    assert_eq!(full, WINDOWS * FRAME_LEN, "frame size drifted; update test");
    let prefix = full - FRAME_LEN;
    let expected = offline_after(WINDOWS - 1);
    let expected_full = offline_after(WINDOWS);

    let case = tmpdir("trunc-case");
    for cut in prefix..full {
        copy_dir(&base, &case);
        let (_, seg) = wal::list_segments(&case).unwrap().pop().unwrap();
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        let rec = recover(StoreConfig::new(&case))
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery refused a torn tail: {e}"));
        assert_eq!(
            rec.host.batches_recorded(),
            (WINDOWS - 1) as u64,
            "cut at {cut}"
        );
        assert_bitwise(&rec.host, &expected, &format!("cut at {cut}"));
        // The torn tail was physically truncated to the valid prefix…
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            prefix as u64,
            "cut at {cut}: tail not truncated"
        );
        // …and the store is ready to append the lost epoch again.
        let mut store = rec.store;
        assert_eq!(store.next_epoch(), WINDOWS as u64);
        store
            .append_window(WINDOWS as u64, &window(WINDOWS as u32 - 1))
            .unwrap();
        let rec2 = recover(StoreConfig::new(&case)).unwrap();
        assert_bitwise(
            &rec2.host,
            &expected_full,
            &format!("cut at {cut}: re-append"),
        );
    }
}

#[test]
fn truncating_the_final_frame_across_segment_rotation() {
    // One frame per segment: the torn tail lives in its own file and every
    // earlier segment is scanned with the stricter non-final rules.
    let base = tmpdir("trunc-rot-base");
    seed_store(&base, 1);
    let segments = wal::list_segments(&base).unwrap();
    assert_eq!(segments.len(), WINDOWS);
    let (_, last_seg) = segments.last().unwrap().clone();
    let expected = offline_after(WINDOWS - 1);

    let case = tmpdir("trunc-rot-case");
    for cut in 0..FRAME_LEN {
        copy_dir(&base, &case);
        let seg = case.join(last_seg.file_name().unwrap());
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);
        let rec = recover(StoreConfig::new(&case)).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(rec.host.batches_recorded(), (WINDOWS - 1) as u64);
        assert_bitwise(&rec.host, &expected, &format!("rotated cut at {cut}"));
    }
}

#[test]
fn flipping_any_single_byte_of_an_interior_frame_is_a_typed_error() {
    let base = tmpdir("flip-base");
    seed_store(&base, u64::MAX);
    let (_, seg_name) = wal::list_segments(&base).unwrap().pop().unwrap();
    let seg_name = seg_name.file_name().unwrap().to_owned();

    let case = tmpdir("flip-case");
    // Frame 2 of 4: strictly interior — every byte, two flip patterns.
    let frame_start = FRAME_LEN;
    for byte in frame_start..frame_start + FRAME_LEN {
        for flip in [0x01u8, 0x80] {
            copy_dir(&base, &case);
            let seg = case.join(&seg_name);
            let mut bytes = fs::read(&seg).unwrap();
            bytes[byte] ^= flip;
            fs::write(&seg, &bytes).unwrap();
            match recover(StoreConfig::new(&case)) {
                Err(StoreError::Corrupt { offset, .. }) => {
                    assert!(
                        (offset as usize) <= byte,
                        "flip {flip:#04x} at byte {byte}: corruption blamed on a later \
                         offset {offset}"
                    );
                }
                Err(other) => panic!("flip {flip:#04x} at byte {byte}: wrong error class: {other}"),
                Ok(rec) => panic!(
                    "flip {flip:#04x} at byte {byte}: silently recovered to epoch {}",
                    rec.host.batches_recorded()
                ),
            }
        }
    }
}

#[test]
fn arbitrary_mutations_never_panic() {
    let base = tmpdir("fuzz-base");
    seed_store(&base, u64::MAX);
    let (_, seg_name) = wal::list_segments(&base).unwrap().pop().unwrap();
    let seg_name = seg_name.file_name().unwrap().to_owned();
    let case = tmpdir("fuzz-case");
    let mut rng = StdRng::seed_from_u64(0xFA17);
    let mut recovered = 0u32;
    for _ in 0..60 {
        copy_dir(&base, &case);
        let seg = case.join(&seg_name);
        let mut bytes = fs::read(&seg).unwrap();
        for _ in 0..rng.gen_range(1..5usize) {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= rng.gen_range(1..256usize) as u8;
        }
        if rng.gen_bool(0.3) {
            bytes.truncate(rng.gen_range(0..bytes.len() + 1));
        }
        fs::write(&seg, &bytes).unwrap();
        // Either outcome is legal; returning is the property.
        if recover(StoreConfig::new(&case)).is_ok() {
            recovered += 1;
        }
    }
    // Sanity: the harness isn't vacuous — some mutations must be caught.
    assert!(recovered < 60, "every mutation recovered?");
}
