//! Multinomial logistic regression on dense features.
//!
//! Full-batch gradient descent with Nesterov momentum and L2 regularisation.
//! Feature matrices here are `|S| × d` (a few hundred × ≤128), so nothing
//! fancier is warranted; 300 iterations converge far past what the
//! embedding-quality comparisons can resolve.

use tsvd_linalg::DenseMatrix;

/// A trained softmax classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// `num_classes × (d + 1)` weights (last column is the bias).
    w: DenseMatrix,
    num_classes: usize,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LogRegConfig {
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            iters: 300,
            lr: 0.5,
            l2: 1e-4,
        }
    }
}

impl LogisticRegression {
    /// Train on rows `x[i]` with labels `y[i] ∈ 0..num_classes`.
    /// Features are standardised internally (per-column z-score) for
    /// conditioning; the transform is folded into the weights, so `predict`
    /// takes raw features.
    pub fn train(x: &DenseMatrix, y: &[usize], num_classes: usize, cfg: LogRegConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "row/label mismatch");
        assert!(num_classes >= 1);
        assert!(y.iter().all(|&c| c < num_classes), "label out of range");
        let (n, d) = (x.rows(), x.cols());
        // Column standardisation.
        let mut mean = vec![0.0; d];
        let mut std = vec![0.0; d];
        for i in 0..n {
            for (j, &v) in x.row(i).iter().enumerate() {
                mean[j] += v;
            }
        }
        for m in &mut mean {
            *m /= n.max(1) as f64;
        }
        for i in 0..n {
            for (j, &v) in x.row(i).iter().enumerate() {
                std[j] += (v - mean[j]).powi(2);
            }
        }
        for s in &mut std {
            *s = (*s / n.max(1) as f64).sqrt().max(1e-9);
        }
        let xs = DenseMatrix::from_fn(n, d, |i, j| (x.get(i, j) - mean[j]) / std[j]);

        let mut w = DenseMatrix::zeros(num_classes, d + 1);
        let mut vel = DenseMatrix::zeros(num_classes, d + 1);
        let momentum = 0.9;
        let mut probs = vec![0.0; num_classes];
        for _ in 0..cfg.iters {
            let mut grad = DenseMatrix::zeros(num_classes, d + 1);
            for (i, &yi) in y.iter().enumerate().take(n) {
                softmax_row(&w, xs.row(i), &mut probs);
                for (c, &pc) in probs.iter().enumerate() {
                    let err = pc - if yi == c { 1.0 } else { 0.0 };
                    let grow = grad.row_mut(c);
                    for (g, &f) in grow[..d].iter_mut().zip(xs.row(i)) {
                        *g += err * f;
                    }
                    grow[d] += err;
                }
            }
            let scale = 1.0 / n.max(1) as f64;
            for c in 0..num_classes {
                for j in 0..=d {
                    let g = grad.get(c, j) * scale + cfg.l2 * w.get(c, j);
                    let v = momentum * vel.get(c, j) - cfg.lr * g;
                    vel.set(c, j, v);
                    w.set(c, j, w.get(c, j) + v);
                }
            }
        }
        // Fold standardisation into the weights: w'·x = w·((x−μ)/σ).
        let mut folded = DenseMatrix::zeros(num_classes, d + 1);
        for c in 0..num_classes {
            let mut bias = w.get(c, d);
            for j in 0..d {
                let wj = w.get(c, j) / std[j];
                folded.set(c, j, wj);
                bias -= w.get(c, j) * mean[j] / std[j];
            }
            folded.set(c, d, bias);
        }
        LogisticRegression {
            w: folded,
            num_classes,
        }
    }

    /// Predicted class of one raw feature row.
    pub fn predict_one(&self, x: &[f64]) -> usize {
        let d = self.w.cols() - 1;
        assert_eq!(x.len(), d);
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.num_classes {
            let row = self.w.row(c);
            let score: f64 = row[..d].iter().zip(x).map(|(w, f)| w * f).sum::<f64>() + row[d];
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    /// Predicted classes for every row of `x`.
    pub fn predict(&self, x: &DenseMatrix) -> Vec<usize> {
        (0..x.rows()).map(|i| self.predict_one(x.row(i))).collect()
    }
}

fn softmax_row(w: &DenseMatrix, x: &[f64], out: &mut [f64]) {
    let d = x.len();
    let mut maxv = f64::NEG_INFINITY;
    for (c, o) in out.iter_mut().enumerate() {
        let row = w.row(c);
        let s: f64 = row[..d].iter().zip(x).map(|(a, b)| a * b).sum::<f64>() + row[d];
        *o = s;
        maxv = maxv.max(s);
    }
    let mut z = 0.0;
    for o in out.iter_mut() {
        *o = (*o - maxv).exp();
        z += *o;
    }
    for o in out.iter_mut() {
        *o /= z;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    #[test]
    fn separable_two_class() {
        // Class = sign of first coordinate.
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100;
        let mut x = DenseMatrix::zeros(n, 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let base = if cls == 0 { -2.0 } else { 2.0 };
            x.set(i, 0, base + rng.gen_range(-0.5..0.5));
            x.set(i, 1, rng.gen_range(-1.0..1.0));
            x.set(i, 2, rng.gen_range(-1.0..1.0));
            y.push(cls);
        }
        let clf = LogisticRegression::train(&x, &y, 2, LogRegConfig::default());
        let pred = clf.predict(&x);
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(acc >= 98, "accuracy {acc}/100");
    }

    #[test]
    fn three_class_gaussians() {
        let mut rng = StdRng::seed_from_u64(2);
        let centers = [(0.0, 3.0), (3.0, -2.0), (-3.0, -2.0)];
        let n = 150;
        let mut x = DenseMatrix::zeros(n, 2);
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 3;
            x.set(i, 0, centers[c].0 + rng.gen_range(-0.8..0.8));
            x.set(i, 1, centers[c].1 + rng.gen_range(-0.8..0.8));
            y.push(c);
        }
        let clf = LogisticRegression::train(&x, &y, 3, LogRegConfig::default());
        let acc = clf
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count();
        assert!(acc as f64 / n as f64 > 0.95);
    }

    #[test]
    fn single_class_degenerate() {
        let x = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
        let clf = LogisticRegression::train(&x, &[0, 0], 1, LogRegConfig::default());
        assert_eq!(clf.predict(&x), vec![0, 0]);
    }

    #[test]
    fn scale_invariance_via_standardisation() {
        // Multiplying a feature column by 1000 must not destroy training.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 80;
        let mut x = DenseMatrix::zeros(n, 2);
        let mut y = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let v = if cls == 0 { -1.0 } else { 1.0 };
            x.set(i, 0, v * 1000.0 + rng.gen_range(-100.0..100.0));
            x.set(i, 1, rng.gen_range(-0.001..0.001));
            y.push(cls);
        }
        let clf = LogisticRegression::train(&x, &y, 2, LogRegConfig::default());
        let acc = clf
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count();
        assert!(acc >= 78, "accuracy {acc}/80");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let x = DenseMatrix::zeros(2, 2);
        let _ = LogisticRegression::train(&x, &[0, 5], 2, LogRegConfig::default());
    }
}
