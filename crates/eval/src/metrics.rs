//! Classification metrics: micro- and macro-averaged F1.

/// Micro- and macro-averaged F1 over a multi-class prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Scores {
    /// Micro-F1 (for single-label classification this equals accuracy).
    pub micro: f64,
    /// Macro-F1 (unweighted mean of per-class F1).
    pub macro_: f64,
}

/// Compute F1 scores from parallel truth/prediction label slices.
///
/// Classes are the union of labels appearing in either slice. Classes with
/// no true or predicted instances contribute an F1 of 0 to the macro
/// average, matching scikit-learn's `zero_division=0` convention.
pub fn f1_scores(truth: &[usize], pred: &[usize]) -> F1Scores {
    assert_eq!(truth.len(), pred.len(), "label length mismatch");
    if truth.is_empty() {
        return F1Scores {
            micro: 0.0,
            macro_: 0.0,
        };
    }
    let num_classes = truth
        .iter()
        .chain(pred.iter())
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnn = vec![0usize; num_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        if t == p {
            tp[t] += 1;
        } else {
            fp[p] += 1;
            fnn[t] += 1;
        }
    }
    let (tp_sum, fp_sum, fn_sum) = (
        tp.iter().sum::<usize>() as f64,
        fp.iter().sum::<usize>() as f64,
        fnn.iter().sum::<usize>() as f64,
    );
    let micro = if tp_sum == 0.0 {
        0.0
    } else {
        2.0 * tp_sum / (2.0 * tp_sum + fp_sum + fn_sum)
    };
    let mut macro_sum = 0.0;
    let mut active = 0usize;
    for c in 0..num_classes {
        let denom = 2 * tp[c] + fp[c] + fnn[c];
        if tp[c] + fp[c] + fnn[c] == 0 {
            continue; // class absent from both truth and prediction
        }
        active += 1;
        if denom > 0 {
            macro_sum += 2.0 * tp[c] as f64 / denom as f64;
        }
    }
    let macro_ = if active == 0 {
        0.0
    } else {
        macro_sum / active as f64
    };
    F1Scores { micro, macro_ }
}

/// Area under the ROC curve for binary scores.
///
/// Computed as the Mann–Whitney U statistic: the probability that a random
/// positive outscores a random negative, with ties counted half. `O(n log n)`.
/// Returns 0.5 for degenerate inputs (no positives or no negatives).
pub fn roc_auc(scores: &[(f64, bool)]) -> f64 {
    let pos = scores.iter().filter(|e| e.1).count();
    let neg = scores.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Rank-sum with midpoint ranks for ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].0.partial_cmp(&scores[b].0).unwrap());
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]].0 == scores[order[i]].0 {
            j += 1;
        }
        // Average 1-based rank of the tie group [i, j].
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if scores[idx].1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (pos as f64) * (pos as f64 + 1.0) / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Precision among the top-`k` highest-scored items.
///
/// Ties at the cut are resolved by the sort's ordering (stable given equal
/// scores). `k` is clamped to the number of items; returns 0 for empty
/// input.
pub fn precision_at_k(scores: &[(f64, bool)], k: usize) -> f64 {
    if scores.is_empty() || k == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].0.partial_cmp(&scores[a].0).unwrap());
    let k = k.min(order.len());
    let hits = order[..k].iter().filter(|&&i| scores[i].1).count();
    hits as f64 / k as f64
}

/// Recall@k of a retrieved neighbor list against the exact top-k.
///
/// `retrieved` and `exact` are plain node-id lists (the serving tier's
/// answer and a ground-truth scan, in any order); the score is the
/// fraction of `exact` that appears in `retrieved`. Duplicates in
/// `retrieved` count once. Returns 1.0 for an empty ground truth — an
/// empty ask is trivially answered.
pub fn recall_at_k(retrieved: &[u32], exact: &[u32]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let got: std::collections::HashSet<u32> = retrieved.iter().copied().collect();
    let hits = exact.iter().filter(|n| got.contains(n)).count();
    hits as f64 / exact.len() as f64
}

/// Average precision (the area under the precision–recall curve as each
/// positive is encountered walking down the ranking). Returns 0 when there
/// are no positives.
pub fn average_precision(scores: &[(f64, bool)]) -> f64 {
    let num_pos = scores.iter().filter(|e| e.1).count();
    if num_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].0.partial_cmp(&scores[a].0).unwrap());
    let mut hits = 0usize;
    let mut ap = 0.0;
    for (rank, &i) in order.iter().enumerate() {
        if scores[i].1 {
            hits += 1;
            ap += hits as f64 / (rank + 1) as f64;
        }
    }
    ap / num_pos as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let s = f1_scores(&[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(s.micro, 1.0);
        assert_eq!(s.macro_, 1.0);
    }

    #[test]
    fn all_wrong() {
        let s = f1_scores(&[0, 0, 0], &[1, 1, 1]);
        assert_eq!(s.micro, 0.0);
        assert_eq!(s.macro_, 0.0);
    }

    #[test]
    fn micro_equals_accuracy_single_label() {
        let truth = vec![0, 1, 2, 2, 1, 0, 0];
        let pred = vec![0, 2, 2, 2, 1, 1, 0];
        let s = f1_scores(&truth, &pred);
        let acc =
            truth.iter().zip(&pred).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64;
        assert!((s.micro - acc).abs() < 1e-12);
    }

    #[test]
    fn macro_penalises_minority_errors_more() {
        // 9 of class 0 right, the single class-1 item wrong.
        let truth = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let s = f1_scores(&truth, &pred);
        assert!(s.micro > 0.85);
        assert!(s.macro_ < 0.55, "macro {}", s.macro_);
    }

    #[test]
    fn hand_computed_binary_case() {
        // truth: 0 0 1 1, pred: 0 1 1 1.
        // class0: tp=1 fp=0 fn=1 → f1 = 2/3; class1: tp=2 fp=1 fn=0 → 4/5.
        let s = f1_scores(&[0, 0, 1, 1], &[0, 1, 1, 1]);
        assert!((s.macro_ - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
        assert!((s.micro - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let s = f1_scores(&[], &[]);
        assert_eq!(s.micro, 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let perfect = vec![(0.9, true), (0.8, true), (0.3, false), (0.1, false)];
        assert_eq!(roc_auc(&perfect), 1.0);
        let inverted = vec![(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert_eq!(roc_auc(&inverted), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // Alternating scores: every positive ties exactly one negative
        // above and one below on average.
        let scores: Vec<(f64, bool)> = (0..100).map(|i| (i as f64, i % 2 == 0)).collect();
        let auc = roc_auc(&scores);
        assert!((auc - 0.5).abs() < 0.02, "auc {auc}");
    }

    #[test]
    fn auc_handles_ties() {
        // All scores equal: AUC must be exactly 0.5.
        let scores = vec![(1.0, true), (1.0, false), (1.0, true), (1.0, false)];
        assert_eq!(roc_auc(&scores), 0.5);
    }

    #[test]
    fn precision_at_k_basics() {
        let scores = vec![(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        assert_eq!(precision_at_k(&scores, 1), 1.0);
        assert_eq!(precision_at_k(&scores, 2), 0.5);
        assert!((precision_at_k(&scores, 3) - 2.0 / 3.0).abs() < 1e-12);
        // k beyond length clamps.
        assert_eq!(precision_at_k(&scores, 100), 0.5);
        assert_eq!(precision_at_k(&[], 5), 0.0);
        assert_eq!(precision_at_k(&scores, 0), 0.0);
    }

    #[test]
    fn average_precision_hand_computed() {
        // Ranking: +, -, +  →  AP = (1/1 + 2/3) / 2 = 5/6.
        let scores = vec![(0.9, true), (0.5, false), (0.4, true)];
        assert!((average_precision(&scores) - 5.0 / 6.0).abs() < 1e-12);
        // Perfect ranking → AP = 1; no positives → 0.
        let perfect = vec![(0.9, true), (0.8, true), (0.1, false)];
        assert_eq!(average_precision(&perfect), 1.0);
        assert_eq!(average_precision(&[(0.3, false)]), 0.0);
    }

    #[test]
    fn average_precision_monotone_in_ranking_quality() {
        let good = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let bad = vec![(0.9, false), (0.8, false), (0.2, true), (0.1, true)];
        assert!(average_precision(&good) > average_precision(&bad));
    }

    #[test]
    fn recall_at_k_counts_overlap_orderless() {
        assert_eq!(recall_at_k(&[3, 1, 2], &[1, 2, 3]), 1.0);
        assert_eq!(recall_at_k(&[3, 9, 2], &[1, 2, 3]), 2.0 / 3.0);
        assert_eq!(recall_at_k(&[], &[1, 2]), 0.0);
        // Duplicate retrieved ids count once.
        assert_eq!(recall_at_k(&[1, 1, 1], &[1, 2]), 0.5);
        // Empty ground truth is trivially recalled.
        assert_eq!(recall_at_k(&[], &[]), 1.0);
        assert_eq!(recall_at_k(&[7], &[]), 1.0);
    }

    #[test]
    fn auc_degenerate_inputs() {
        assert_eq!(roc_auc(&[]), 0.5);
        assert_eq!(roc_auc(&[(1.0, true)]), 0.5);
        // Hand-computed: pos scores {3, 1}, neg {2}: one win, one loss.
        let s = vec![(3.0, true), (2.0, false), (1.0, true)];
        assert_eq!(roc_auc(&s), 0.5);
    }
}
