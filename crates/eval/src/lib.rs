//! # tsvd-eval
//!
//! Downstream evaluation exactly as in the paper's Section 6:
//!
//! * [`NodeClassificationTask`] — single-label classification of subset
//!   nodes from their embeddings via one-vs-rest logistic regression,
//!   scored with micro-/macro-F1 at a given training ratio;
//! * [`LinkPredictionTask`] — the subset link-prediction protocol: 30% of
//!   subset-outgoing edges held out as positives, an equal number of
//!   sampled non-edge negatives, precision@|positives| over dot-product
//!   scores;
//! * [`metrics`] — confusion-matrix F1 machinery;
//! * [`logreg`] — the multinomial logistic-regression trainer (full-batch
//!   gradient descent; the feature matrices here are |S| × d, tiny).

pub mod linkpred;
pub mod logreg;
pub mod metrics;
mod nodeclass;

pub use linkpred::LinkPredictionTask;
pub use nodeclass::NodeClassificationTask;
