//! Link-prediction evaluation (the paper's LP task).
//!
//! Protocol of Section 6.1: hold out a fraction of the subset-outgoing
//! edges as positive test pairs, sample an equal number of non-edge
//! `S × V` pairs as negatives, **remove the positives from the graph**,
//! embed on what remains, then rank all test pairs by the dot product
//! `⟨x_s, y_v⟩` and report precision among the top-|positives| pairs.

use tsvd_graph::DynGraph;
use tsvd_linalg::DenseMatrix;
use tsvd_rt::rng::SliceRandom;
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

/// A prepared link-prediction task: the training graph (positives removed)
/// plus the labelled test pairs.
#[derive(Debug, Clone)]
pub struct LinkPredictionTask {
    /// The graph with held-out positive edges removed — embed on this.
    pub train_graph: DynGraph,
    /// Held-out true edges as `(subset_row, target_node)`.
    positives: Vec<(usize, u32)>,
    /// Sampled non-edges as `(subset_row, target_node)`.
    negatives: Vec<(usize, u32)>,
}

impl LinkPredictionTask {
    /// Build the task from snapshot `g`: hold out `holdout_ratio` of each
    /// source's outgoing edges (paper: 30%).
    ///
    /// Sources with a single outgoing edge keep it (removing a node's whole
    /// neighbourhood would make it unembeddable).
    pub fn from_graph(g: &DynGraph, sources: &[u32], holdout_ratio: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&holdout_ratio));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positives = Vec::new();
        let mut train_graph = g.clone();
        for (i, &s) in sources.iter().enumerate() {
            let mut outs: Vec<u32> = g.out_neighbors(s).to_vec();
            if outs.len() <= 1 {
                continue;
            }
            outs.shuffle(&mut rng);
            let take = ((outs.len() as f64) * holdout_ratio).floor() as usize;
            let take = take.min(outs.len() - 1);
            for &v in &outs[..take] {
                positives.push((i, v));
                train_graph.delete_edge(s, v);
            }
        }
        // Negatives: uniform (source, target) pairs that are non-edges in
        // the *original* graph and not already sampled.
        let n = g.num_nodes() as u32;
        let mut negatives = Vec::with_capacity(positives.len());
        let mut seen = std::collections::HashSet::new();
        let mut guard = 0usize;
        while negatives.len() < positives.len() && guard < positives.len() * 1000 + 1000 {
            guard += 1;
            let i = rng.gen_range(0..sources.len());
            let v = rng.gen_range(0..n);
            let s = sources[i];
            if s == v || g.has_edge(s, v) || !seen.insert((i, v)) {
                continue;
            }
            negatives.push((i, v));
        }
        LinkPredictionTask {
            train_graph,
            positives,
            negatives,
        }
    }

    /// Build a task from explicit pair lists (used by the batch-update
    /// experiments, where positives are *future* edges filtered out of the
    /// event stream instead of edges deleted from a static snapshot).
    pub fn from_pairs(
        train_graph: DynGraph,
        positives: Vec<(usize, u32)>,
        negatives: Vec<(usize, u32)>,
    ) -> Self {
        LinkPredictionTask {
            train_graph,
            positives,
            negatives,
        }
    }

    /// Number of positive test pairs.
    pub fn num_positives(&self) -> usize {
        self.positives.len()
    }

    /// Score every labelled test pair by the dot product `⟨x_s, y_v⟩`.
    fn scored_pairs(&self, left: &DenseMatrix, right: &DenseMatrix) -> Vec<(f64, bool)> {
        let score = |&(i, v): &(usize, u32)| -> f64 {
            left.row(i)
                .iter()
                .zip(right.row(v as usize))
                .map(|(a, b)| a * b)
                .sum()
        };
        self.positives
            .iter()
            .map(|p| (score(p), true))
            .chain(self.negatives.iter().map(|p| (score(p), false)))
            .collect()
    }

    /// Precision@|positives| from a `(left, right)` embedding pair:
    /// `left` has one row per subset index, `right` one row per graph node.
    pub fn precision(&self, left: &DenseMatrix, right: &DenseMatrix) -> f64 {
        if self.positives.is_empty() {
            return 0.0;
        }
        let mut scored = self.scored_pairs(left, right);
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let k = self.positives.len();
        let hits = scored[..k].iter().filter(|e| e.1).count();
        hits as f64 / k as f64
    }

    /// ROC-AUC over the same scored pairs (threshold-free companion metric
    /// to [`LinkPredictionTask::precision`]).
    pub fn auc(&self, left: &DenseMatrix, right: &DenseMatrix) -> f64 {
        crate::metrics::roc_auc(&self.scored_pairs(left, right))
    }

    /// Precision among the top-`k` scored test pairs.
    pub fn precision_at(&self, left: &DenseMatrix, right: &DenseMatrix, k: usize) -> f64 {
        crate::metrics::precision_at_k(&self.scored_pairs(left, right), k)
    }

    /// Mean average precision of the ranking over all test pairs.
    pub fn average_precision(&self, left: &DenseMatrix, right: &DenseMatrix) -> f64 {
        crate::metrics::average_precision(&self.scored_pairs(left, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_graph(n: u32, seed: u64) -> DynGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DynGraph::with_nodes(n as usize);
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.2) {
                    g.insert_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn holdout_removes_positives_from_train_graph() {
        let g = dense_graph(30, 1);
        let sources = vec![0u32, 1, 2];
        let task = LinkPredictionTask::from_graph(&g, &sources, 0.3, 7);
        assert!(task.num_positives() > 0);
        for &(i, v) in &task.positives {
            assert!(g.has_edge(sources[i], v), "positive was a real edge");
            assert!(
                !task.train_graph.has_edge(sources[i], v),
                "positive must be removed from the training graph"
            );
        }
        assert_eq!(task.negatives.len(), task.positives.len());
        for &(i, v) in &task.negatives {
            assert!(!g.has_edge(sources[i], v), "negatives are non-edges");
        }
    }

    #[test]
    fn oracle_embedding_gets_perfect_precision() {
        // Score = 1 for positives, 0 for negatives via a hand-built pair.
        let g = dense_graph(20, 2);
        let sources = vec![0u32, 1];
        let task = LinkPredictionTask::from_graph(&g, &sources, 0.4, 3);
        let n = g.num_nodes();
        // One-hot trick: left row i = e_i (dim = |S|), right row v has
        // right[v][i] = 1 iff (i, v) is a positive.
        let left = DenseMatrix::identity(2);
        let mut right = DenseMatrix::zeros(n, 2);
        for &(i, v) in &task.positives {
            right.set(v as usize, i, 1.0);
        }
        assert_eq!(task.precision(&left, &right), 1.0);
    }

    #[test]
    fn anti_oracle_gets_zero() {
        let g = dense_graph(20, 4);
        let sources = vec![0u32, 1];
        let task = LinkPredictionTask::from_graph(&g, &sources, 0.4, 5);
        let n = g.num_nodes();
        let left = DenseMatrix::identity(2);
        let mut right = DenseMatrix::zeros(n, 2);
        for &(i, v) in &task.negatives {
            right.set(v as usize, i, 1.0);
        }
        assert_eq!(task.precision(&left, &right), 0.0);
    }

    #[test]
    fn random_embedding_near_half() {
        let g = dense_graph(60, 6);
        let sources: Vec<u32> = (0..20).collect();
        let task = LinkPredictionTask::from_graph(&g, &sources, 0.3, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let left = DenseMatrix::from_fn(20, 8, |_, _| rng.gen_range(-1.0..1.0));
        let right = DenseMatrix::from_fn(60, 8, |_, _| rng.gen_range(-1.0..1.0));
        let p = task.precision(&left, &right);
        assert!(p > 0.25 && p < 0.75, "random precision {p}");
    }

    #[test]
    fn auc_tracks_precision() {
        let g = dense_graph(20, 2);
        let sources = vec![0u32, 1];
        let task = LinkPredictionTask::from_graph(&g, &sources, 0.4, 3);
        let n = g.num_nodes();
        let left = DenseMatrix::identity(2);
        let mut right = DenseMatrix::zeros(n, 2);
        for &(i, v) in &task.positives {
            right.set(v as usize, i, 1.0);
        }
        assert_eq!(task.auc(&left, &right), 1.0, "oracle embedding has AUC 1");
    }

    #[test]
    fn degree_one_sources_keep_their_edge() {
        let mut g = DynGraph::with_nodes(5);
        g.insert_edge(0, 1); // source 0 has exactly one out-edge
        g.insert_edge(2, 3);
        g.insert_edge(2, 4);
        g.insert_edge(2, 1);
        let task = LinkPredictionTask::from_graph(&g, &[0, 2], 0.5, 1);
        assert!(task.train_graph.has_edge(0, 1));
        assert!(task.positives.iter().all(|&(i, _)| i == 1));
    }
}
