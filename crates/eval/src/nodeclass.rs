//! Node-classification evaluation (the paper's NC task).
//!
//! Single-label classification of the subset nodes from their embedding
//! rows, with a random train/test split at a given training ratio, exactly
//! as in DynPPE's protocol that the paper follows.

use crate::logreg::{LogRegConfig, LogisticRegression};
use crate::metrics::{f1_scores, F1Scores};
use tsvd_linalg::DenseMatrix;
use tsvd_rt::rng::SeedableRng;
use tsvd_rt::rng::SliceRandom;
use tsvd_rt::rng::StdRng;

/// A reusable node-classification task: fixed labels and a fixed split per
/// `(train_ratio, seed)`, so different methods are compared on identical
/// splits.
#[derive(Debug, Clone)]
pub struct NodeClassificationTask {
    labels: Vec<usize>,
    num_classes: usize,
    train_idx: Vec<usize>,
    test_idx: Vec<usize>,
}

impl NodeClassificationTask {
    /// Split `labels.len()` items at `train_ratio` using `seed`.
    pub fn new(labels: &[usize], train_ratio: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&train_ratio) && train_ratio > 0.0);
        assert!(!labels.is_empty(), "need at least one labelled node");
        let num_classes = labels.iter().copied().max().unwrap() + 1;
        let mut idx: Vec<usize> = (0..labels.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let cut = ((labels.len() as f64) * train_ratio).round() as usize;
        let cut = cut.clamp(1, labels.len() - 1);
        let (train, test) = idx.split_at(cut);
        NodeClassificationTask {
            labels: labels.to_vec(),
            num_classes,
            train_idx: train.to_vec(),
            test_idx: test.to_vec(),
        }
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Train/test sizes.
    pub fn split_sizes(&self) -> (usize, usize) {
        (self.train_idx.len(), self.test_idx.len())
    }

    /// Train a classifier on the embedding's train rows and score the test
    /// rows. `embedding` must have one row per labelled item.
    pub fn evaluate(&self, embedding: &DenseMatrix) -> F1Scores {
        assert_eq!(
            embedding.rows(),
            self.labels.len(),
            "embedding rows must match labels"
        );
        let d = embedding.cols();
        let mut x_train = DenseMatrix::zeros(self.train_idx.len(), d);
        let mut y_train = Vec::with_capacity(self.train_idx.len());
        for (r, &i) in self.train_idx.iter().enumerate() {
            x_train.row_mut(r).copy_from_slice(embedding.row(i));
            y_train.push(self.labels[i]);
        }
        let clf = LogisticRegression::train(
            &x_train,
            &y_train,
            self.num_classes,
            LogRegConfig::default(),
        );
        let truth: Vec<usize> = self.test_idx.iter().map(|&i| self.labels[i]).collect();
        let pred: Vec<usize> = self
            .test_idx
            .iter()
            .map(|&i| clf.predict_one(embedding.row(i)))
            .collect();
        f1_scores(&truth, &pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::Rng;

    /// Embedding where class is linearly decodable.
    fn informative_embedding(labels: &[usize], d: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseMatrix::from_fn(labels.len(), d, |i, j| {
            let signal = if j == labels[i] { 2.0 } else { 0.0 };
            signal + rng.gen_range(-0.3..0.3)
        })
    }

    #[test]
    fn informative_features_score_high() {
        let labels: Vec<usize> = (0..120).map(|i| i % 4).collect();
        let task = NodeClassificationTask::new(&labels, 0.5, 7);
        let emb = informative_embedding(&labels, 8, 1);
        let s = task.evaluate(&emb);
        assert!(s.micro > 0.9, "micro {}", s.micro);
        assert!(s.macro_ > 0.9);
    }

    #[test]
    fn random_features_score_low() {
        let labels: Vec<usize> = (0..200).map(|i| i % 4).collect();
        let task = NodeClassificationTask::new(&labels, 0.5, 7);
        let mut rng = StdRng::seed_from_u64(2);
        let emb = DenseMatrix::from_fn(200, 8, |_, _| rng.gen_range(-1.0..1.0));
        let s = task.evaluate(&emb);
        assert!(s.micro < 0.5, "micro {}", s.micro);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let labels: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let a = NodeClassificationTask::new(&labels, 0.7, 3);
        let b = NodeClassificationTask::new(&labels, 0.7, 3);
        assert_eq!(a.train_idx, b.train_idx);
        let c = NodeClassificationTask::new(&labels, 0.7, 4);
        assert_ne!(a.train_idx, c.train_idx);
    }

    #[test]
    fn split_sizes_respect_ratio() {
        let labels: Vec<usize> = (0..100).map(|i| i % 3).collect();
        let task = NodeClassificationTask::new(&labels, 0.7, 1);
        let (tr, te) = task.split_sizes();
        assert_eq!(tr, 70);
        assert_eq!(te, 30);
    }

    #[test]
    fn train_and_test_disjoint_covering() {
        let labels: Vec<usize> = (0..40).map(|i| i % 5).collect();
        let task = NodeClassificationTask::new(&labels, 0.5, 9);
        let mut all: Vec<usize> = task
            .train_idx
            .iter()
            .chain(task.test_idx.iter())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }
}
