//! Property-based tests for the evaluation layer: metric bounds and
//! identities, split integrity, link-prediction scoring invariants.

use tsvd_eval::metrics::f1_scores;
use tsvd_eval::{LinkPredictionTask, NodeClassificationTask};
use tsvd_graph::DynGraph;
use tsvd_linalg::DenseMatrix;
use tsvd_rt::check::{Checker, Gen};
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_rt::{assume, ensure, ensure_eq};

fn label_pairs(g: &mut Gen, classes: usize, len: std::ops::Range<usize>) -> Vec<(usize, usize)> {
    g.vec(len, |g| (g.usize_in(0..classes), g.usize_in(0..classes)))
}

#[test]
fn f1_scores_bounded_and_micro_is_accuracy() {
    Checker::new(64).run("f1_scores_bounded_and_micro_is_accuracy", |g| {
        let pairs = label_pairs(g, 5, 1..60);
        let truth: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let pred: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let s = f1_scores(&truth, &pred);
        ensure!((0.0..=1.0).contains(&s.micro));
        ensure!((0.0..=1.0).contains(&s.macro_));
        let acc =
            truth.iter().zip(&pred).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64;
        ensure!((s.micro - acc).abs() < 1e-12, "micro-F1 == accuracy");
        // Perfect prediction ⇒ both scores are 1.
        let p = f1_scores(&truth, &truth);
        ensure_eq!(p.micro, 1.0);
        ensure_eq!(p.macro_, 1.0);
        Ok(())
    });
}

#[test]
fn f1_invariant_under_label_permutation() {
    Checker::new(64).run("f1_invariant_under_label_permutation", |g| {
        let pairs = label_pairs(g, 4, 2..40);
        // Relabeling classes consistently must not change either score.
        let perm = [2usize, 0, 3, 1];
        let truth: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let pred: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let t2: Vec<usize> = truth.iter().map(|&c| perm[c]).collect();
        let p2: Vec<usize> = pred.iter().map(|&c| perm[c]).collect();
        let a = f1_scores(&truth, &pred);
        let b = f1_scores(&t2, &p2);
        ensure!((a.micro - b.micro).abs() < 1e-12);
        ensure!((a.macro_ - b.macro_).abs() < 1e-12);
        Ok(())
    });
}

#[test]
fn classification_split_partitions_indices() {
    Checker::new(64).run("classification_split_partitions_indices", |g| {
        let len = g.usize_in(4..80);
        let ratio = g.f64_in(0.2..0.8);
        let seed = g.u64_in(0..100);
        let labels: Vec<usize> = (0..len).map(|i| i % 3).collect();
        let task = NodeClassificationTask::new(&labels, ratio, seed);
        let (tr, te) = task.split_sizes();
        ensure_eq!(tr + te, len);
        ensure!(tr >= 1 && te >= 1);
        Ok(())
    });
}

#[test]
fn link_prediction_precision_bounds() {
    Checker::new(64).run("link_prediction_precision_bounds", |gen| {
        let seed = gen.u64_in(0..50);
        let dim = gen.usize_in(1..6);
        let mut g = DynGraph::with_nodes(20);
        // Deterministic dense-ish graph.
        for u in 0..20u32 {
            for k in 1..5u32 {
                g.insert_edge(u, (u + k) % 20);
            }
        }
        let sources = vec![0u32, 3, 7, 11];
        let task = LinkPredictionTask::from_graph(&g, &sources, 0.4, seed);
        assume!(task.num_positives() > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let left = DenseMatrix::from_fn(4, dim, |_, _| rng.gen_range(-1.0..1.0));
        let right = DenseMatrix::from_fn(20, dim, |_, _| rng.gen_range(-1.0..1.0));
        let p = task.precision(&left, &right);
        ensure!((0.0..=1.0).contains(&p));
        // Scaling both embeddings by a positive constant is ranking-neutral.
        let mut l2 = left.clone();
        for v in l2.as_mut_slice() {
            *v *= 3.0;
        }
        let p2 = task.precision(&l2, &right);
        ensure!((p - p2).abs() < 1e-12);
        Ok(())
    });
}
