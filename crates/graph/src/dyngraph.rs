//! Directed dynamic graph with O(deg) edge insert/delete.

use crate::events::{EdgeEvent, EventKind};

/// Which adjacency direction a traversal follows.
///
/// Tree-SVD computes personalized PageRank both on the input graph (walks
/// follow out-edges, [`Direction::Out`]) and on its reverse (walks follow
/// in-edges, [`Direction::In`]), so [`DynGraph`] maintains both adjacency
/// lists and every traversal API is parameterised by a direction instead of
/// materialising a second reversed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges u → v (the forward graph).
    Out,
    /// Follow edges v → u (the reverse/transpose graph).
    In,
}

tsvd_rt::impl_json_enum!(Direction { Out, In });

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// A directed graph over dense node ids `0..n` with dynamic edge updates.
///
/// Both out- and in-adjacency lists are maintained so that reverse-graph
/// personalized PageRank (needed for the STRAP-style proximity matrix) costs
/// nothing extra. Parallel edges are rejected; self-loops are allowed (some
/// synthetic streams produce them and the push algorithms handle them).
///
/// # Examples
///
/// ```
/// use tsvd_graph::{Direction, DynGraph, EdgeEvent};
///
/// let mut g = DynGraph::with_nodes(3);
/// g.insert_edge(0, 1);
/// g.apply_event(&EdgeEvent::insert(1, 2));
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1, Direction::In), &[0]);
/// g.delete_edge(0, 1);
/// assert!(!g.has_edge(0, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynGraph {
    out: Vec<Vec<u32>>,
    inn: Vec<Vec<u32>>,
    num_edges: usize,
}

tsvd_rt::impl_json_struct!(DynGraph {
    out,
    inn,
    num_edges
});

impl DynGraph {
    /// An empty graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        DynGraph {
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Build a graph from an edge list, growing the node set as needed.
    /// Duplicate edges in the list are silently ignored.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = DynGraph::with_nodes(n);
        for &(u, v) in edges {
            g.ensure_node(u.max(v));
            g.insert_edge(u, v);
        }
        g
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Grow the node set so that `v` is a valid node id.
    pub fn ensure_node(&mut self, v: u32) {
        let need = v as usize + 1;
        if need > self.out.len() {
            self.out.resize_with(need, Vec::new);
            self.inn.resize_with(need, Vec::new);
        }
    }

    /// Insert edge `u → v`. Returns `false` (and changes nothing) if the edge
    /// already exists. Panics if either endpoint is out of range; callers
    /// that consume raw streams should [`DynGraph::ensure_node`] first.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(
            (u as usize) < self.out.len() && (v as usize) < self.out.len(),
            "edge ({u},{v}) out of range (n={})",
            self.out.len()
        );
        if self.out[u as usize].contains(&v) {
            return false;
        }
        self.out[u as usize].push(v);
        self.inn[v as usize].push(u);
        self.num_edges += 1;
        true
    }

    /// Delete edge `u → v`. Returns `false` if the edge was not present.
    pub fn delete_edge(&mut self, u: u32, v: u32) -> bool {
        let Some(pos) = self
            .out
            .get(u as usize)
            .and_then(|l| l.iter().position(|&x| x == v))
        else {
            return false;
        };
        self.out[u as usize].swap_remove(pos);
        let ipos = self.inn[v as usize]
            .iter()
            .position(|&x| x == u)
            .expect("in-list out of sync with out-list");
        self.inn[v as usize].swap_remove(ipos);
        self.num_edges -= 1;
        true
    }

    /// `true` if edge `u → v` is present.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.out.get(u as usize).is_some_and(|l| l.contains(&v))
    }

    /// Apply a single edge event (growing the node set for inserts).
    /// Returns `true` if the graph actually changed.
    pub fn apply_event(&mut self, e: &EdgeEvent) -> bool {
        match e.kind {
            EventKind::Insert => {
                self.ensure_node(e.u.max(e.v));
                self.insert_edge(e.u, e.v)
            }
            EventKind::Delete => self.delete_edge(e.u, e.v),
        }
    }

    /// Neighbors of `u` following `dir`.
    #[inline]
    pub fn neighbors(&self, u: u32, dir: Direction) -> &[u32] {
        match dir {
            Direction::Out => &self.out[u as usize],
            Direction::In => &self.inn[u as usize],
        }
    }

    /// Degree of `u` in direction `dir`.
    #[inline]
    pub fn degree(&self, u: u32, dir: Direction) -> usize {
        self.neighbors(u, dir).len()
    }

    /// Out-neighbors of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: u32) -> &[u32] {
        &self.out[u as usize]
    }

    /// In-neighbors of `u`.
    #[inline]
    pub fn in_neighbors(&self, u: u32) -> &[u32] {
        &self.inn[u as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: u32) -> usize {
        self.out[u as usize].len()
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: u32) -> usize {
        self.inn[u as usize].len()
    }

    /// All edges as `(u, v)` pairs, in adjacency order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, l)| l.iter().map(move |&v| (u as u32, v)))
    }

    /// CSR-style arrays `(indptr, indices)` of the adjacency in `dir`,
    /// with neighbor lists sorted. Used to hand the graph to the linear
    /// algebra layer (e.g. RandNE's high-order projections).
    pub fn to_csr_arrays(&self, dir: Direction) -> (Vec<usize>, Vec<u32>) {
        let adj = match dir {
            Direction::Out => &self.out,
            Direction::In => &self.inn,
        };
        let mut indptr = Vec::with_capacity(adj.len() + 1);
        let mut indices = Vec::with_capacity(self.num_edges);
        indptr.push(0);
        for l in adj {
            let mut row: Vec<u32> = l.clone();
            row.sort_unstable();
            indices.extend_from_slice(&row);
            indptr.push(indices.len());
        }
        (indptr, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DynGraph::with_nodes(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn insert_and_query() {
        let mut g = DynGraph::with_nodes(3);
        assert!(g.insert_edge(0, 1));
        assert!(g.insert_edge(0, 2));
        assert!(!g.insert_edge(0, 1), "duplicate insert must be rejected");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn delete_keeps_lists_in_sync() {
        let mut g = DynGraph::with_nodes(4);
        for v in 1..4 {
            g.insert_edge(0, v);
            g.insert_edge(v, 0);
        }
        assert!(g.delete_edge(0, 2));
        assert!(!g.delete_edge(0, 2), "double delete must fail");
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 0);
        assert_eq!(g.num_edges(), 5);
        // remaining out-neighbors of 0 are exactly {1,3}
        let mut ns = g.out_neighbors(0).to_vec();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 3]);
    }

    #[test]
    fn directions_are_transposes() {
        let mut g = DynGraph::with_nodes(3);
        g.insert_edge(0, 1);
        g.insert_edge(2, 1);
        assert_eq!(g.neighbors(1, Direction::In), &[0, 2]);
        assert_eq!(g.neighbors(1, Direction::Out), &[] as &[u32]);
        assert_eq!(g.degree(1, Direction::In), 2);
        assert_eq!(Direction::Out.reversed(), Direction::In);
    }

    #[test]
    fn apply_event_grows_node_set() {
        let mut g = DynGraph::with_nodes(1);
        let changed = g.apply_event(&EdgeEvent::insert(5, 2));
        assert!(changed);
        assert_eq!(g.num_nodes(), 6);
        assert!(g.has_edge(5, 2));
        assert!(!g.apply_event(&EdgeEvent::delete(9, 9)));
    }

    #[test]
    fn self_loop_allowed() {
        let mut g = DynGraph::with_nodes(2);
        assert!(g.insert_edge(1, 1));
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn csr_arrays_sorted() {
        let mut g = DynGraph::with_nodes(3);
        g.insert_edge(0, 2);
        g.insert_edge(0, 1);
        g.insert_edge(2, 0);
        let (indptr, indices) = g.to_csr_arrays(Direction::Out);
        assert_eq!(indptr, vec![0, 2, 2, 3]);
        assert_eq!(indices, vec![1, 2, 0]);
        let (indptr_t, indices_t) = g.to_csr_arrays(Direction::In);
        assert_eq!(indptr_t, vec![0, 1, 2, 3]);
        assert_eq!(indices_t, vec![2, 0, 0]);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0), (0, 2)];
        let g = DynGraph::from_edges(3, &edges);
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        let mut want = edges.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
