//! Snapshot streams: a timestamped event log cut into the paper's
//! `G^0, G^1, …, G^τ` snapshot sequence.

use crate::dyngraph::DynGraph;
use crate::events::EdgeEvent;

/// An edge event tagged with a (logical) timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Monotonically non-decreasing logical time.
    pub time: u64,
    /// The event itself.
    pub event: EdgeEvent,
}

tsvd_rt::impl_json_struct!(TimedEvent { time, event });

/// A dynamic graph presented as `τ` snapshots over a timestamped event log
/// (Definition 2.1). Snapshot `0` is the empty graph; snapshot `t ≥ 1` is the
/// graph after applying event batches `Δ^1, …, Δ^t`.
///
/// # Examples
///
/// ```
/// use tsvd_graph::{EdgeEvent, SnapshotStream, TimedEvent};
///
/// let log = vec![
///     TimedEvent { time: 0, event: EdgeEvent::insert(0, 1) },
///     TimedEvent { time: 1, event: EdgeEvent::insert(1, 2) },
/// ];
/// let stream = SnapshotStream::from_log(3, &log, 2);
/// assert_eq!(stream.snapshot(1).num_edges(), 1);
/// assert_eq!(stream.snapshot(2).num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotStream {
    num_nodes: usize,
    /// `batches[t-1]` is `Δ^t`, the events between snapshot `t-1` and `t`.
    batches: Vec<Vec<EdgeEvent>>,
}

tsvd_rt::impl_json_struct!(SnapshotStream { num_nodes, batches });

impl SnapshotStream {
    /// Partition a time-sorted event log into `tau` batches of (roughly)
    /// equal event count. `num_nodes` is the final node-id space.
    ///
    /// Panics if `tau == 0` or the log is not sorted by time.
    pub fn from_log(num_nodes: usize, log: &[TimedEvent], tau: usize) -> Self {
        assert!(tau > 0, "need at least one snapshot");
        assert!(
            log.windows(2).all(|w| w[0].time <= w[1].time),
            "event log must be sorted by time"
        );
        let mut batches: Vec<Vec<EdgeEvent>> = vec![Vec::new(); tau];
        let per = log.len().div_ceil(tau).max(1);
        for (i, te) in log.iter().enumerate() {
            let b = (i / per).min(tau - 1);
            batches[b].push(te.event);
        }
        SnapshotStream { num_nodes, batches }
    }

    /// Build directly from pre-cut batches.
    pub fn from_batches(num_nodes: usize, batches: Vec<Vec<EdgeEvent>>) -> Self {
        assert!(!batches.is_empty(), "need at least one batch");
        SnapshotStream { num_nodes, batches }
    }

    /// Number of snapshots `τ` (excluding the empty `G^0`).
    #[inline]
    pub fn num_snapshots(&self) -> usize {
        self.batches.len()
    }

    /// Node-id space of the final snapshot.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The event batch `Δ^t` for `t ∈ 1..=τ`.
    pub fn batch(&self, t: usize) -> &[EdgeEvent] {
        assert!(
            t >= 1 && t <= self.batches.len(),
            "snapshot {t} out of range"
        );
        &self.batches[t - 1]
    }

    /// Total number of events in the stream.
    pub fn num_events(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Materialise snapshot `t` (`0 ≤ t ≤ τ`) from scratch.
    pub fn snapshot(&self, t: usize) -> DynGraph {
        assert!(t <= self.batches.len(), "snapshot {t} out of range");
        let mut g = DynGraph::with_nodes(self.num_nodes);
        for batch in &self.batches[..t] {
            for e in batch {
                g.apply_event(e);
            }
        }
        g
    }

    /// Iterate `(t, Δ^t)` pairs for `t = 1..=τ`.
    pub fn iter_batches(&self) -> impl Iterator<Item = (usize, &[EdgeEvent])> {
        self.batches
            .iter()
            .enumerate()
            .map(|(i, b)| (i + 1, b.as_slice()))
    }

    /// Split every batch into sub-batches of at most `size` events, producing
    /// a finer-grained stream over the same event sequence. Used by the
    /// batch-update experiments (Exp. 4) which replay 10⁴-event batches.
    pub fn rebatched(&self, size: usize) -> SnapshotStream {
        assert!(size > 0);
        let mut batches = Vec::new();
        for b in &self.batches {
            if b.is_empty() {
                batches.push(Vec::new());
                continue;
            }
            for chunk in b.chunks(size) {
                batches.push(chunk.to_vec());
            }
        }
        SnapshotStream {
            num_nodes: self.num_nodes,
            batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log3() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                time: 0,
                event: EdgeEvent::insert(0, 1),
            },
            TimedEvent {
                time: 1,
                event: EdgeEvent::insert(1, 2),
            },
            TimedEvent {
                time: 2,
                event: EdgeEvent::insert(2, 0),
            },
            TimedEvent {
                time: 3,
                event: EdgeEvent::delete(0, 1),
            },
        ]
    }

    #[test]
    fn snapshots_accumulate_batches() {
        let s = SnapshotStream::from_log(3, &log3(), 2);
        assert_eq!(s.num_snapshots(), 2);
        let g0 = s.snapshot(0);
        assert_eq!(g0.num_edges(), 0);
        let g1 = s.snapshot(1);
        assert_eq!(g1.num_edges(), 2); // first two inserts
        let g2 = s.snapshot(2);
        assert_eq!(g2.num_edges(), 2); // +insert(2,0), -delete(0,1)
        assert!(g2.has_edge(2, 0));
        assert!(!g2.has_edge(0, 1));
    }

    #[test]
    fn batch_indexing_is_one_based() {
        let s = SnapshotStream::from_log(3, &log3(), 4);
        assert_eq!(s.batch(1).len(), 1);
        assert_eq!(s.num_events(), 4);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_log_rejected() {
        let mut log = log3();
        log.swap(0, 3);
        let _ = SnapshotStream::from_log(3, &log, 2);
    }

    #[test]
    fn rebatched_preserves_sequence() {
        let s = SnapshotStream::from_log(3, &log3(), 1);
        let fine = s.rebatched(1);
        assert_eq!(fine.num_snapshots(), 4);
        assert_eq!(fine.num_events(), 4);
        // Final graphs must match.
        let a = s.snapshot(s.num_snapshots());
        let b = fine.snapshot(fine.num_snapshots());
        let mut ea: Vec<_> = a.edges().collect();
        let mut eb: Vec<_> = b.edges().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn incremental_equals_from_scratch() {
        let s = SnapshotStream::from_log(3, &log3(), 3);
        let mut g = s.snapshot(0);
        for (t, batch) in s.iter_batches() {
            for e in batch {
                g.apply_event(e);
            }
            let fresh = s.snapshot(t);
            assert_eq!(g.num_edges(), fresh.num_edges(), "snapshot {t}");
        }
    }
}
