//! Parallel helpers — now a thin re-export of [`tsvd_rt::pool`].
//!
//! The per-call `std::thread::scope` loops that used to live here moved
//! into the persistent work-stealing pool in `tsvd-rt` (see DESIGN.md §3):
//! parallelism is runtime infrastructure, not a graph concern, and spawning
//! fresh OS threads per region put spawn/join overhead on the small-batch
//! dynamic-update path. This shim keeps `tsvd_graph::par::{num_threads,
//! par_map, par_chunks}` imports working so downstream call sites didn't
//! all have to churn at once; new code should use [`tsvd_rt::pool`]
//! directly, which also offers scratch-state and slice-mutation variants.

pub use tsvd_rt::pool::{num_threads, par_chunks, par_map};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Smoke tests that the re-exported surface behaves; the pool's own unit
    // tests (tsvd-rt) cover nesting, panics, and scratch states.

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(1000, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn par_chunks_covers_everything_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        par_chunks(500, 7, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads() >= 1);
    }
}
