//! Minimal scoped-thread parallel helpers.
//!
//! The offline crate set has no rayon, so the PPR engine and the level-1
//! block SVDs use these helpers instead. They split an index range into
//! contiguous chunks, one per worker, and run them on `std::thread::scope`
//! threads — deterministic output placement, no work stealing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: `TSVD_THREADS` env var if set, otherwise
/// the machine's available parallelism (capped at 16 — the workloads here
/// saturate memory bandwidth well before that).
pub fn num_threads() -> usize {
    if let Ok(s) = std::env::var("TSVD_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Apply `f(i)` for every `i` in `0..n`, collecting results in index order.
///
/// `f` runs on multiple threads; it must be `Sync` and is handed disjoint
/// indices. Falls back to a sequential loop when `n` is small or only one
/// thread is available.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    // Dynamic chunking: workers grab small index blocks so skewed work (e.g.
    // hub-heavy PPR sources) balances out.
    let chunk = (n / (threads * 8)).max(1);
    let out_ptr = SendPtr(out.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            let out_ptr = &out_ptr;
            s.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    let v = f(i);
                    // SAFETY: each index i is claimed by exactly one worker
                    // via the atomic counter, and `out` outlives the scope.
                    unsafe { *out_ptr.0.add(i) = Some(v) };
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("worker filled every slot"))
        .collect()
}

/// Run `f(chunk_range)` over disjoint contiguous chunks of `0..n` in
/// parallel, for workloads that want to amortise per-chunk setup (e.g. a
/// scratch buffer per worker).
pub fn par_chunks<F>(n: usize, min_chunk: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = num_threads();
    if threads <= 1 || n <= min_chunk {
        f(0..n);
        return;
    }
    let chunk = (n.div_ceil(threads)).max(min_chunk);
    std::thread::scope(|s| {
        let f = &f;
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            s.spawn(move || f(start..end));
            start = end;
        }
    });
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced at disjoint indices (one writer
// per index, enforced by the atomic counter) within the thread scope.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(1000, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn par_chunks_covers_everything_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        par_chunks(500, 7, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads() >= 1);
    }
}
