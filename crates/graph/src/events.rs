//! Edge events (Definition 2.1 of the paper).

/// Whether an edge event inserts or deletes the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The edge `u → v` is added to the graph.
    Insert,
    /// The edge `u → v` is removed from the graph.
    Delete,
}

/// A single edge event `⟨u, v, kind⟩` from the paper's dynamic graph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeEvent {
    /// Source endpoint.
    pub u: u32,
    /// Target endpoint.
    pub v: u32,
    /// Insert or delete.
    pub kind: EventKind,
}

tsvd_rt::impl_json_enum!(EventKind { Insert, Delete });
tsvd_rt::impl_json_struct!(EdgeEvent { u, v, kind });

impl EdgeEvent {
    /// An insertion event for `u → v`.
    #[inline]
    pub fn insert(u: u32, v: u32) -> Self {
        EdgeEvent {
            u,
            v,
            kind: EventKind::Insert,
        }
    }

    /// A deletion event for `u → v`.
    #[inline]
    pub fn delete(u: u32, v: u32) -> Self {
        EdgeEvent {
            u,
            v,
            kind: EventKind::Delete,
        }
    }

    /// The same event on the reverse graph (`v → u`).
    ///
    /// Used to mirror updates into the transpose-PPR state.
    #[inline]
    pub fn reversed(&self) -> Self {
        EdgeEvent {
            u: self.v,
            v: self.u,
            kind: self.kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_swaps_endpoints_keeps_kind() {
        let e = EdgeEvent::insert(3, 7);
        let r = e.reversed();
        assert_eq!((r.u, r.v, r.kind), (7, 3, EventKind::Insert));
        let d = EdgeEvent::delete(1, 2).reversed();
        assert_eq!((d.u, d.v, d.kind), (2, 1, EventKind::Delete));
    }

    #[test]
    fn double_reversal_is_identity() {
        let e = EdgeEvent::delete(10, 20);
        assert_eq!(e.reversed().reversed(), e);
    }
}
