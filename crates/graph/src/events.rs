//! Edge events (Definition 2.1 of the paper).

/// Whether an edge event inserts or deletes the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The edge `u → v` is added to the graph.
    Insert,
    /// The edge `u → v` is removed from the graph.
    Delete,
}

/// A single edge event `⟨u, v, kind⟩` from the paper's dynamic graph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeEvent {
    /// Source endpoint.
    pub u: u32,
    /// Target endpoint.
    pub v: u32,
    /// Insert or delete.
    pub kind: EventKind,
}

tsvd_rt::impl_json_enum!(EventKind { Insert, Delete });
tsvd_rt::impl_json_struct!(EdgeEvent { u, v, kind });

impl EdgeEvent {
    /// An insertion event for `u → v`.
    #[inline]
    pub fn insert(u: u32, v: u32) -> Self {
        EdgeEvent {
            u,
            v,
            kind: EventKind::Insert,
        }
    }

    /// A deletion event for `u → v`.
    #[inline]
    pub fn delete(u: u32, v: u32) -> Self {
        EdgeEvent {
            u,
            v,
            kind: EventKind::Delete,
        }
    }

    /// The same event on the reverse graph (`v → u`).
    ///
    /// Used to mirror updates into the transpose-PPR state.
    #[inline]
    pub fn reversed(&self) -> Self {
        EdgeEvent {
            u: self.v,
            v: self.u,
            kind: self.kind,
        }
    }
}

/// Reusable workspace for [`coalesce`]: the per-pair last-write index map.
///
/// The map is cleared after every call but keeps its allocation, so a
/// caller that coalesces a stream of windows (the serving layer's flush
/// path) pays for the hash table once instead of reallocating it per
/// window — the same fix `PushScratch` applied to `forward_push`.
#[derive(Default)]
pub struct CoalesceScratch {
    last: std::collections::HashMap<(u32, u32), usize>,
}

impl CoalesceScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark which events survive last-write-wins dedup: `keep[i]` is set
    /// iff `batch[i]` is the final occurrence of its `(u, v)` pair.
    /// Returns the number of survivors. `keep` is overwritten (resized to
    /// `batch.len()`), so callers can reuse one buffer across windows too.
    pub fn mark_survivors(&mut self, batch: &[EdgeEvent], keep: &mut Vec<bool>) -> usize {
        self.last.clear();
        for (i, e) in batch.iter().enumerate() {
            self.last.insert((e.u, e.v), i);
        }
        keep.clear();
        keep.resize(batch.len(), false);
        let mut survivors = 0usize;
        for (i, e) in batch.iter().enumerate() {
            if self.last[&(e.u, e.v)] == i {
                keep[i] = true;
                survivors += 1;
            }
        }
        survivors
    }

    /// [`coalesce`] against this scratch's reused map.
    pub fn coalesce(&mut self, batch: &[EdgeEvent]) -> Vec<EdgeEvent> {
        let mut keep = Vec::new();
        let survivors = self.mark_survivors(batch, &mut keep);
        let mut out = Vec::with_capacity(survivors);
        out.extend(batch.iter().zip(&keep).filter(|(_, &k)| k).map(|(e, _)| *e));
        out
    }
}

/// Collapse a batch to one event per `(u, v)` pair, last write wins.
///
/// Within a batch only the final state of each edge matters: an
/// `insert(u,v)` followed by `delete(u,v)` nets out to the delete (applied
/// to a graph without the edge it is a recorded no-op), and repeated inserts
/// collapse to one. Surviving events keep the batch's relative order, each
/// at the position of its *last* occurrence — so cross-pair ordering within
/// the batch is preserved. The serving layer's batcher runs this over every
/// flush window (through a held [`CoalesceScratch`], which amortises the
/// map allocation); dataset replay tooling can use it to pre-shrink
/// oversized batches.
pub fn coalesce(batch: &[EdgeEvent]) -> Vec<EdgeEvent> {
    CoalesceScratch::new().coalesce(batch)
}

/// Stable-sort a timestamped log and collapse it per [`coalesce`].
///
/// The sort is stable, so events sharing a timestamp keep their original
/// relative order before last-write-wins dedup — the canonical way to turn
/// an out-of-order event feed into a replayable batch.
pub fn coalesce_timed(log: &[crate::stream::TimedEvent]) -> Vec<EdgeEvent> {
    let mut sorted: Vec<_> = log.to_vec();
    sorted.sort_by_key(|te| te.time);
    let events: Vec<EdgeEvent> = sorted.iter().map(|te| te.event).collect();
    coalesce(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_swaps_endpoints_keeps_kind() {
        let e = EdgeEvent::insert(3, 7);
        let r = e.reversed();
        assert_eq!((r.u, r.v, r.kind), (7, 3, EventKind::Insert));
        let d = EdgeEvent::delete(1, 2).reversed();
        assert_eq!((d.u, d.v, d.kind), (2, 1, EventKind::Delete));
    }

    #[test]
    fn double_reversal_is_identity() {
        let e = EdgeEvent::delete(10, 20);
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn coalesce_keeps_last_write_per_pair() {
        let batch = vec![
            EdgeEvent::insert(0, 1),
            EdgeEvent::insert(2, 3),
            EdgeEvent::delete(0, 1),
            EdgeEvent::insert(0, 1), // final state of (0,1)
            EdgeEvent::delete(2, 3), // final state of (2,3)
        ];
        assert_eq!(
            coalesce(&batch),
            vec![EdgeEvent::insert(0, 1), EdgeEvent::delete(2, 3)]
        );
    }

    #[test]
    fn coalesce_preserves_cross_pair_order() {
        let batch = vec![
            EdgeEvent::insert(5, 6),
            EdgeEvent::insert(1, 2),
            EdgeEvent::insert(3, 4),
        ];
        assert_eq!(coalesce(&batch), batch, "distinct pairs pass through");
    }

    #[test]
    fn coalesce_insert_then_delete_nets_to_delete() {
        let batch = vec![EdgeEvent::insert(7, 8), EdgeEvent::delete(7, 8)];
        assert_eq!(coalesce(&batch), vec![EdgeEvent::delete(7, 8)]);
        assert!(coalesce(&[]).is_empty());
    }

    #[test]
    fn coalesce_distinguishes_directions() {
        // (u,v) and (v,u) are different edges on a directed graph.
        let batch = vec![EdgeEvent::insert(1, 2), EdgeEvent::delete(2, 1)];
        assert_eq!(coalesce(&batch), batch);
    }

    #[test]
    fn coalesce_timed_sorts_stably_then_dedups() {
        use crate::stream::TimedEvent;
        let log = vec![
            TimedEvent {
                time: 2,
                event: EdgeEvent::delete(0, 1),
            },
            TimedEvent {
                time: 1,
                event: EdgeEvent::insert(0, 1),
            },
            TimedEvent {
                time: 1,
                event: EdgeEvent::insert(4, 5),
            },
            TimedEvent {
                time: 1,
                event: EdgeEvent::insert(2, 3),
            },
        ];
        // Sorted by time: [ins(0,1), ins(4,5), ins(2,3), del(0,1)];
        // equal-time events keep their order (stable), then (0,1)
        // collapses to its last write, the delete.
        assert_eq!(
            coalesce_timed(&log),
            vec![
                EdgeEvent::insert(4, 5),
                EdgeEvent::insert(2, 3),
                EdgeEvent::delete(0, 1),
            ]
        );
    }
}
