//! # tsvd-graph
//!
//! Dynamic directed graph substrate for the Tree-SVD reproduction.
//!
//! The paper (Definition 2.1) models a dynamic graph as an ordered set of
//! snapshots `G^0, G^1, …, G^τ` where `G^0` is empty, `G^1` is the initial
//! graph, and consecutive snapshots are separated by a batch `Δ^t` of edge
//! *events* (insertions and deletions). This crate provides:
//!
//! * [`DynGraph`] — an adjacency-list directed graph supporting O(deg)
//!   insert/delete and O(1) degree queries in both directions;
//! * [`EdgeEvent`] / [`EventKind`] — the edge-event vocabulary of Def. 2.1,
//!   with [`coalesce`] / [`coalesce_timed`] for last-write-wins batch
//!   normalisation (the serving layer's window semantics);
//! * [`SnapshotStream`] — a timestamped event log partitioned into snapshots;
//! * [`par`] — a compatibility re-export of the [`tsvd_rt::pool`] parallel
//!   primitives (parallelism lives in the persistent work-stealing pool of
//!   the runtime substrate; this shim keeps older imports working).

mod dyngraph;
mod events;
pub mod par;
mod stream;

pub use dyngraph::{Direction, DynGraph};
pub use events::{coalesce, coalesce_timed, CoalesceScratch, EdgeEvent, EventKind};
pub use stream::{SnapshotStream, TimedEvent};
