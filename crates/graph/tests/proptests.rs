//! Property-based tests for the dynamic-graph substrate: adjacency-list
//! consistency under arbitrary event sequences, snapshot determinism, and
//! CSR export invariants.

use std::collections::HashSet;
use tsvd_graph::{Direction, DynGraph, EdgeEvent, SnapshotStream, TimedEvent};
use tsvd_rt::check::{Checker, Gen};
use tsvd_rt::{assume, ensure, ensure_eq};

fn event_sequence(g: &mut Gen) -> (usize, Vec<(u32, u32, bool)>) {
    let n = g.usize_in(2..20);
    let evs = g.vec(0..60, |g| {
        (g.u32_in(0..n as u32), g.u32_in(0..n as u32), g.bool())
    });
    (n, evs)
}

#[test]
fn adjacency_matches_reference_set() {
    Checker::new(64).run("adjacency_matches_reference_set", |gen| {
        let (n, evs) = event_sequence(gen);
        let mut g = DynGraph::with_nodes(n);
        let mut reference: HashSet<(u32, u32)> = HashSet::new();
        for (u, v, ins) in evs {
            if ins {
                let changed = g.apply_event(&EdgeEvent::insert(u, v));
                ensure_eq!(changed, reference.insert((u, v)));
            } else {
                let changed = g.apply_event(&EdgeEvent::delete(u, v));
                ensure_eq!(changed, reference.remove(&(u, v)));
            }
        }
        ensure_eq!(g.num_edges(), reference.len());
        // Out-lists, in-lists, has_edge, and the iterator all agree.
        let mut from_iter: Vec<(u32, u32)> = g.edges().collect();
        from_iter.sort_unstable();
        let mut from_ref: Vec<(u32, u32)> = reference.iter().copied().collect();
        from_ref.sort_unstable();
        ensure_eq!(&from_iter, &from_ref);
        for &(u, v) in &reference {
            ensure!(g.has_edge(u, v));
            ensure!(g.out_neighbors(u).contains(&v));
            ensure!(g.in_neighbors(v).contains(&u));
        }
        // Degree sums both equal the edge count.
        let out_sum: usize = (0..g.num_nodes() as u32).map(|u| g.out_degree(u)).sum();
        let in_sum: usize = (0..g.num_nodes() as u32).map(|u| g.in_degree(u)).sum();
        ensure_eq!(out_sum, reference.len());
        ensure_eq!(in_sum, reference.len());
        Ok(())
    });
}

#[test]
fn csr_export_is_sorted_and_complete() {
    Checker::new(64).run("csr_export_is_sorted_and_complete", |gen| {
        let (n, evs) = event_sequence(gen);
        let mut g = DynGraph::with_nodes(n);
        for (u, v, ins) in evs {
            let e = if ins {
                EdgeEvent::insert(u, v)
            } else {
                EdgeEvent::delete(u, v)
            };
            g.apply_event(&e);
        }
        for dir in [Direction::Out, Direction::In] {
            let (indptr, indices) = g.to_csr_arrays(dir);
            ensure_eq!(indptr.len(), g.num_nodes() + 1);
            ensure_eq!(*indptr.last().unwrap(), g.num_edges());
            for u in 0..g.num_nodes() {
                let row = &indices[indptr[u]..indptr[u + 1]];
                ensure!(row.windows(2).all(|w| w[0] < w[1]), "row {u} unsorted");
                ensure_eq!(row.len(), g.degree(u as u32, dir));
            }
        }
        Ok(())
    });
}

#[test]
fn snapshot_replay_is_deterministic_and_incremental() {
    Checker::new(64).run("snapshot_replay_is_deterministic_and_incremental", |gen| {
        let (n, evs) = event_sequence(gen);
        assume!(!evs.is_empty());
        let log: Vec<TimedEvent> = evs
            .iter()
            .enumerate()
            .map(|(t, &(u, v, ins))| TimedEvent {
                time: t as u64,
                event: if ins {
                    EdgeEvent::insert(u, v)
                } else {
                    EdgeEvent::delete(u, v)
                },
            })
            .collect();
        let tau = 3.min(log.len());
        let stream = SnapshotStream::from_log(n, &log, tau);
        // Incremental application equals from-scratch materialisation.
        let mut g = stream.snapshot(0);
        for (t, batch) in stream.iter_batches() {
            for e in batch {
                g.apply_event(e);
            }
            let fresh = stream.snapshot(t);
            let mut a: Vec<_> = g.edges().collect();
            let mut b: Vec<_> = fresh.edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            ensure_eq!(a, b, "snapshot {}", t);
        }
        // Rebatching preserves the final graph.
        let fine = stream.rebatched(1);
        let g1 = stream.snapshot(stream.num_snapshots());
        let g2 = fine.snapshot(fine.num_snapshots());
        ensure_eq!(g1.num_edges(), g2.num_edges());
        Ok(())
    });
}
