//! Property-based tests for the dynamic-graph substrate: adjacency-list
//! consistency under arbitrary event sequences, snapshot determinism, and
//! CSR export invariants.

use proptest::prelude::*;
use std::collections::HashSet;
use tsvd_graph::{Direction, DynGraph, EdgeEvent, SnapshotStream, TimedEvent};

fn event_sequence() -> impl Strategy<Value = (usize, Vec<(u32, u32, bool)>)> {
    (2usize..20).prop_flat_map(|n| {
        let events = proptest::collection::vec(
            (0..n as u32, 0..n as u32, prop::bool::ANY),
            0..60,
        );
        (Just(n), events)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_matches_reference_set((n, evs) in event_sequence()) {
        let mut g = DynGraph::with_nodes(n);
        let mut reference: HashSet<(u32, u32)> = HashSet::new();
        for (u, v, ins) in evs {
            if ins {
                let changed = g.apply_event(&EdgeEvent::insert(u, v));
                prop_assert_eq!(changed, reference.insert((u, v)));
            } else {
                let changed = g.apply_event(&EdgeEvent::delete(u, v));
                prop_assert_eq!(changed, reference.remove(&(u, v)));
            }
        }
        prop_assert_eq!(g.num_edges(), reference.len());
        // Out-lists, in-lists, has_edge, and the iterator all agree.
        let mut from_iter: Vec<(u32, u32)> = g.edges().collect();
        from_iter.sort_unstable();
        let mut from_ref: Vec<(u32, u32)> = reference.iter().copied().collect();
        from_ref.sort_unstable();
        prop_assert_eq!(&from_iter, &from_ref);
        for &(u, v) in &reference {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.out_neighbors(u).contains(&v));
            prop_assert!(g.in_neighbors(v).contains(&u));
        }
        // Degree sums both equal the edge count.
        let out_sum: usize = (0..g.num_nodes() as u32).map(|u| g.out_degree(u)).sum();
        let in_sum: usize = (0..g.num_nodes() as u32).map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, reference.len());
        prop_assert_eq!(in_sum, reference.len());
    }

    #[test]
    fn csr_export_is_sorted_and_complete((n, evs) in event_sequence()) {
        let mut g = DynGraph::with_nodes(n);
        for (u, v, ins) in evs {
            let e = if ins { EdgeEvent::insert(u, v) } else { EdgeEvent::delete(u, v) };
            g.apply_event(&e);
        }
        for dir in [Direction::Out, Direction::In] {
            let (indptr, indices) = g.to_csr_arrays(dir);
            prop_assert_eq!(indptr.len(), g.num_nodes() + 1);
            prop_assert_eq!(*indptr.last().unwrap(), g.num_edges());
            for u in 0..g.num_nodes() {
                let row = &indices[indptr[u]..indptr[u + 1]];
                prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {u} unsorted");
                prop_assert_eq!(row.len(), g.degree(u as u32, dir));
            }
        }
    }

    #[test]
    fn snapshot_replay_is_deterministic_and_incremental((n, evs) in event_sequence()) {
        prop_assume!(!evs.is_empty());
        let log: Vec<TimedEvent> = evs
            .iter()
            .enumerate()
            .map(|(t, &(u, v, ins))| TimedEvent {
                time: t as u64,
                event: if ins { EdgeEvent::insert(u, v) } else { EdgeEvent::delete(u, v) },
            })
            .collect();
        let tau = 3.min(log.len());
        let stream = SnapshotStream::from_log(n, &log, tau);
        // Incremental application equals from-scratch materialisation.
        let mut g = stream.snapshot(0);
        for (t, batch) in stream.iter_batches() {
            for e in batch {
                g.apply_event(e);
            }
            let fresh = stream.snapshot(t);
            let mut a: Vec<_> = g.edges().collect();
            let mut b: Vec<_> = fresh.edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "snapshot {}", t);
        }
        // Rebatching preserves the final graph.
        let fine = stream.rebatched(1);
        let g1 = stream.snapshot(stream.num_snapshots());
        let g2 = fine.snapshot(fine.num_snapshots());
        prop_assert_eq!(g1.num_edges(), g2.num_edges());
    }
}
