//! Network-front benchmark: frame-codec cost, request round-trip latency
//! over the in-process loopback and real TCP, and pipelined read
//! throughput at depth 1/8/64 — the depths are recorded in the bench JSON
//! (`params`) so latency-vs-throughput trade-offs are comparable across
//! runs.

use tsvd_bench::setup::standard_setup;
use tsvd_core::TreeSvdConfig;
use tsvd_datasets::DatasetConfig;
use tsvd_rt::bench::BenchHarness;
use tsvd_serve::net::wire::{self, Message, Reply, Request, RowsReply};
use tsvd_serve::{ClientConfig, EmbeddingServer, NetClient, NetFront, ServeConfig, TcpTransport};

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 2000;
    cfg.num_edges = 8000;
    cfg.tau = 2;
    let s = standard_setup(&cfg);
    let g0 = s.dataset.stream.snapshot(2);
    let tree_cfg = TreeSvdConfig { ..s.tree_cfg };

    let mut h = BenchHarness::from_args("net");
    let depths = [1usize, 8, 64];
    h.record_param("subset_size", s.subset.len() as u64);
    h.record_param(
        "pipeline_depths",
        depths.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
    );

    // Pure codec: encode+decode a realistic 64×16 rows reply, no I/O.
    let rows_reply = Message::Reply(Reply::Rows(RowsReply {
        epoch: 7,
        checksum_bits: 0x1234_5678_9abc_def0,
        dim: 16,
        rows: (0..64)
            .map(|r| Some((0..16).map(|c| (r * 16 + c) as f64 * 0.25).collect()))
            .collect(),
    }));
    h.bench("codec_encode_decode/rows_64x16", || {
        let mut buf = Vec::new();
        wire::encode_frame(1, 0, &rows_reply, &mut buf);
        let (frame, used) = wire::decode_frame(&buf).expect("own frame");
        (frame.request_id, used)
    });

    let engine = tsvd_serve::ShardedEngine::new(&g0, &s.subset, 2, s.ppr_cfg, tree_cfg);
    let server = EmbeddingServer::start(
        engine,
        ServeConfig {
            num_shards: 2,
            flush_max_events: 1_000_000,
            flush_interval_ms: 60_000,
            ..Default::default()
        },
    );
    let front = NetFront::start(server);
    let addr = front.listen("127.0.0.1:0").expect("bind bench listener");
    let probe: Vec<u32> = s.subset.iter().take(8).copied().collect();

    // Single-request round trip: loopback vs TCP.
    let mut lb = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();
    h.bench("ping_round_trip/loopback", || lb.ping().is_ok());
    h.bench("get_rows_round_trip/loopback", || {
        lb.get_rows(&probe).expect("rows").rows.len()
    });
    drop(lb);

    let mut tcp =
        NetClient::connect(TcpTransport::new(addr.to_string()), ClientConfig::default()).unwrap();
    h.bench("ping_round_trip/tcp", || tcp.ping().is_ok());
    h.bench("get_rows_round_trip/tcp", || {
        tcp.get_rows(&probe).expect("rows").rows.len()
    });

    // Pipelined read throughput: one bench iteration = `depth` requests in
    // flight on one connection; per-request cost shrinks as the depth
    // amortises the round trip.
    for depth in depths {
        let batch: Vec<Request> = (0..depth)
            .map(|_| Request::GetRows(probe.clone()))
            .collect();
        h.bench(&format!("pipelined_get_rows/depth_{depth}"), || {
            let replies = tcp.pipeline(&batch).expect("pipeline");
            assert_eq!(replies.len(), depth);
            depth
        });
    }
    drop(tcp);

    front.shutdown();
    h.finish();
}
