//! Top-k query serving benchmark: the tier-1 blocked scan against the
//! naive score-everything-and-sort reference at the kernel level, and the
//! tier-2 clustered index against the forced scan at the snapshot level —
//! the grid over `n × d × k` that locates the scan/index crossover
//! recorded in EXPERIMENTS.md.
//!
//! Two extra checks ride along:
//!
//! * a counting `#[global_allocator]` asserts the serial scan kernel
//!   performs **zero** allocations per query once its scratch is warm
//!   (the per-epoch norms are cached on the snapshot; the kernel itself
//!   must never touch the heap);
//! * recall@k of the clustered tier against the naive exact answer is
//!   computed with `tsvd-eval` and recorded per grid cell — the pruning
//!   bound is exact, so anything below 1.0 is a bug, not a knob.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tsvd_core::{Embedding, PipelineTimings};
use tsvd_eval::metrics::recall_at_k;
use tsvd_linalg::topk::{topk_scan, topk_scan_naive, Hit, ScanScratch};
use tsvd_linalg::DenseMatrix;
use tsvd_rt::bench::{black_box, BenchHarness};
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::{EpochSnapshot, Metric};

/// Counts every heap allocation so the bench can assert the steady-state
/// scan kernel allocates nothing. Deallocations are not counted — the
/// assertion is about acquiring memory on the query path.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Row-major matrix of `centers` fuzzy clusters — data the tier-2 index
/// can actually exploit, like a real embedding (random uniform data has
/// no cluster structure and benchmarks the index's worst case only).
fn clustered_data(seed: u64, rows: usize, dim: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = (rows as f64).sqrt() as usize;
    let cdata: Vec<f64> = (0..centers * dim)
        .map(|_| rng.gen_range(-1000..1000) as f64 / 100.0)
        .collect();
    let mut data = vec![0.0f64; rows * dim];
    for r in 0..rows {
        let c = rng.gen_range(0..centers);
        for j in 0..dim {
            let noise = rng.gen_range(-100..100) as f64 / 1000.0;
            data[r * dim + j] = cdata[c * dim + j] + noise;
        }
    }
    data
}

fn query_vec(seed: u64, dim: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..dim)
        .map(|_| rng.gen_range(-1000..1000) as f64 / 100.0)
        .collect()
}

/// Wrap raw row-major data as a published snapshot (σ = 1 so the left
/// embedding is the data verbatim): the query state — norms + cluster
/// index — is built at construction, exactly like a real publish.
fn snapshot_of(data: &[f64], rows: usize, dim: usize) -> EpochSnapshot {
    let mut u = DenseMatrix::zeros(rows, dim);
    for r in 0..rows {
        u.row_mut(r).copy_from_slice(&data[r * dim..(r + 1) * dim]);
    }
    let emb = Embedding {
        u,
        sigma: vec![1.0; dim],
        dim,
    };
    let sources: Vec<u32> = (0..rows as u32).collect();
    let index: HashMap<u32, usize> = sources.iter().map(|&n| (n, n as usize)).collect();
    EpochSnapshot::new(
        emb.tagged(0),
        Arc::new(sources),
        Arc::new(index),
        0,
        PipelineTimings::default(),
    )
}

fn main() {
    let mut h = BenchHarness::from_args("query");

    let ns = [4096usize, 16384, 65536];
    let dims = [8usize, 32];
    let ks = [10usize, 100];
    h.record_param(
        "rows_grid",
        ns.iter().map(|&n| n as u64).collect::<Vec<u64>>(),
    );
    h.record_param(
        "dim_grid",
        dims.iter().map(|&d| d as u64).collect::<Vec<u64>>(),
    );
    h.record_param("k_grid", ks.iter().map(|&k| k as u64).collect::<Vec<u64>>());

    // ── Kernel level: naive reference vs blocked scan ────────────────
    for &n in &ns {
        for &d in &dims {
            let data = clustered_data(n as u64 ^ (d as u64) << 7, n, d);
            let q = query_vec(0xBEEF ^ d as u64, d);
            for &k in &ks {
                h.bench(&format!("naive/n{n}/d{d}/k{k}"), || {
                    black_box(topk_scan_naive(
                        black_box(&data),
                        n,
                        d,
                        black_box(&q),
                        k,
                        None,
                        1.0,
                        None,
                    ))
                });
                let mut scratch = ScanScratch::new();
                let mut out: Vec<Hit> = Vec::new();
                h.bench(&format!("blocked/n{n}/d{d}/k{k}"), || {
                    topk_scan(
                        black_box(&data),
                        n,
                        d,
                        black_box(&q),
                        k,
                        None,
                        1.0,
                        None,
                        &mut scratch,
                        &mut out,
                    );
                    black_box(out.len())
                });
            }
        }
    }

    // ── Zero-allocation assertion on the serial kernel path ──────────
    // Warm the scratch once, then count allocations across real queries:
    // the steady state must not touch the allocator at all.
    {
        let (n, d, k) = (16384usize, 32usize, 100usize);
        let data = clustered_data(7, n, d);
        let q = query_vec(11, d);
        let mut scratch = ScanScratch::new();
        scratch.serial = true;
        let mut out: Vec<Hit> = Vec::new();
        topk_scan(&data, n, d, &q, k, None, 1.0, None, &mut scratch, &mut out);
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..16 {
            topk_scan(
                &data,
                n,
                d,
                &q,
                k,
                Some(3),
                1.0,
                None,
                &mut scratch,
                &mut out,
            );
            black_box(out.len());
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(
            allocs, 0,
            "serial scan kernel allocated {allocs} times across 16 warm queries"
        );
        h.record_param("scan_allocs_per_warm_query", 0u64);
    }

    // ── Snapshot level: forced tier-1 scan vs tier-2 clustered index ─
    // The published-snapshot path both tiers actually serve from, with
    // recall@k of the clustered answer against the naive exact answer
    // recorded per cell (the bound is exact: recall must be 1.0).
    for &n in &ns {
        for &d in &dims {
            let data = clustered_data(n as u64 ^ (d as u64) << 7, n, d);
            let snap = snapshot_of(&data, n, d);
            assert!(snap.has_cluster_index());
            let probe = (n / 3) as u32;
            for &k in &ks {
                h.bench(&format!("snap_scan/n{n}/d{d}/k{k}"), || {
                    black_box(snap.top_k_scan(black_box(probe), k, Metric::Dot))
                });
                h.bench(&format!("snap_clustered/n{n}/d{d}/k{k}"), || {
                    black_box(snap.top_k(black_box(probe), k, Metric::Dot))
                });
                let exact: Vec<u32> = topk_scan_naive(
                    &data,
                    n,
                    d,
                    &data[probe as usize * d..(probe as usize + 1) * d],
                    k,
                    Some(probe),
                    1.0,
                    None,
                )
                .into_iter()
                .map(|hit| hit.row)
                .collect();
                let got: Vec<u32> = snap
                    .top_k(probe, k, Metric::Dot)
                    .unwrap()
                    .into_iter()
                    .map(|(node, _)| node)
                    .collect();
                let recall = recall_at_k(&got, &exact);
                assert_eq!(recall, 1.0, "clustered recall@{k} below exact at n{n}/d{d}");
                h.record_param(&format!("recall/n{n}/d{d}/k{k}"), recall);
            }
        }
    }

    h.finish();
}
