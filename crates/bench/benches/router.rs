//! Router-tier benchmark: scatter-gather read round trips through a
//! `Router` front over real TCP shard processes-worth of servers, at
//! shard counts 1/2/4. The shard counts are recorded in the bench JSON
//! (`params`) so fan-out cost is comparable across runs.

use tsvd_bench::setup::standard_setup;
use tsvd_core::TreeSvdConfig;
use tsvd_datasets::DatasetConfig;
use tsvd_graph::EdgeEvent;
use tsvd_rt::bench::BenchHarness;
use tsvd_serve::{
    EmbeddingServer, NetFront, Router, RouterConfig, ServeConfig, ShardEndpoint, ShardMap,
    ShardedEngine, TenantHost,
};

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 2000;
    cfg.num_edges = 8000;
    cfg.tau = 2;
    let s = standard_setup(&cfg);
    let g0 = s.dataset.stream.snapshot(2);
    let tree_cfg = TreeSvdConfig { ..s.tree_cfg };
    let subset: Vec<u32> = s.subset.iter().take(16).copied().collect();

    let shard_counts = [1usize, 2, 4];
    let mut h = BenchHarness::from_args("router");
    h.record_param("subset_size", subset.len() as u64);
    h.record_param(
        "shard_counts",
        shard_counts.iter().map(|&n| n as u64).collect::<Vec<u64>>(),
    );

    for num_shards in shard_counts {
        let map = ShardMap::even_split(&subset, num_shards);

        // One real TCP server per contiguous range, exactly as a
        // deployment would run them (minus the process boundary).
        let mut fronts = Vec::new();
        let mut endpoints = Vec::new();
        for k in 0..map.num_shards() {
            let engine = ShardedEngine::new(
                &g0,
                map.sources_of(k),
                1,
                s.ppr_cfg,
                TreeSvdConfig { ..tree_cfg },
            );
            let front = NetFront::start(EmbeddingServer::start_host(
                TenantHost::from_engine(engine, 0),
                ServeConfig {
                    flush_max_events: 1_000_000,
                    flush_interval_ms: 60_000,
                    ..Default::default()
                },
            ));
            let addr = front.listen("127.0.0.1:0").expect("bind shard listener");
            endpoints.push(ShardEndpoint::leader_only(addr.to_string()));
            fronts.push(front);
        }

        let mut router =
            Router::connect(map, endpoints, RouterConfig::default()).expect("connect router");

        // One broadcast write so reads return real rows, not the empty
        // epoch-0 state.
        router
            .submit(vec![
                EdgeEvent::insert(subset[0], 1776),
                EdgeEvent::insert(subset[1], 1777),
            ])
            .expect("submit");
        router.flush().expect("flush");

        h.bench(
            &format!("scatter_gather_get_rows/shards_{num_shards}"),
            || {
                let reply = router.get_rows(&subset).expect("merged rows");
                assert_eq!(reply.rows.len(), subset.len());
                reply.epoch
            },
        );
        h.bench(&format!("broadcast_submit/shards_{num_shards}"), || {
            router
                .submit(vec![EdgeEvent::insert(subset[2], 1778)])
                .expect("staged")
        });

        drop(router);
        for front in fronts {
            drop(front.shutdown_host());
        }
    }

    h.finish();
}
