//! Durability-layer benchmark: per-window WAL append cost (the fsync the
//! serving reactor pays before publishing a flush), checkpoint write +
//! compaction, and cold recovery (checkpoint load + WAL replay) against a
//! log of known depth. Workload parameters land in the bench JSON so the
//! fsync cost and replay throughput are comparable across runs.

use std::fs;
use std::path::PathBuf;

use tsvd_core::{TreeSvdConfig, UpdatePolicy};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::PprConfig;
use tsvd_rt::bench::BenchHarness;
use tsvd_rt::json::ToJson;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::{DurabilitySink, TenantHost};
use tsvd_store::{read_windows, recover, StoreConfig, WalStore};

const NODES: usize = 60;
const EVENTS_PER_WINDOW: usize = 64;
const REPLAY_WINDOWS: usize = 48;

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tsvd-bench-store-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn host() -> TenantHost {
    let mut g = DynGraph::with_nodes(NODES);
    for i in 0..NODES as u32 {
        g.insert_edge(i, (i + 1) % NODES as u32);
        g.insert_edge(i, (i + 11) % NODES as u32);
    }
    let mut h = TenantHost::new(&g);
    let tree = TreeSvdConfig {
        dim: 8,
        branching: 2,
        num_blocks: 4,
        oversample: 6,
        power_iters: 1,
        policy: UpdatePolicy::Lazy { delta: 0.5 },
        seed: 17,
        ..TreeSvdConfig::default()
    };
    h.register(
        0,
        &(0..8).collect::<Vec<_>>(),
        2,
        PprConfig::default(),
        tree,
    )
    .unwrap();
    h
}

fn window(k: u64) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(0x5708E + k);
    (0..EVENTS_PER_WINDOW)
        .filter_map(|_| {
            let u = rng.gen_range(0..NODES) as u32;
            let v = rng.gen_range(0..NODES) as u32;
            (u != v).then(|| {
                if rng.gen_bool(0.2) {
                    EdgeEvent::delete(u, v)
                } else {
                    EdgeEvent::insert(u, v)
                }
            })
        })
        .collect()
}

fn main() {
    let mut h = BenchHarness::from_args("store");
    h.record_param("events_per_window", EVENTS_PER_WINDOW as u64);
    h.record_param("replay_windows", REPLAY_WINDOWS as u64);
    let cfg_template = StoreConfig::new("unused");
    h.record_param("segment_bytes", cfg_template.segment_bytes);

    // WAL append: encode + write + fsync of one post-coalesce window —
    // the latency the reactor adds to every flush when WAL mode is on.
    let append_dir = bench_dir("append");
    let mut store = WalStore::create(StoreConfig::new(&append_dir), &host()).unwrap();
    let mut epoch = 0u64;
    h.bench("wal_append/window_64ev_fsync", || {
        epoch += 1;
        store.append_window(epoch, &window(epoch)).unwrap();
        epoch
    });

    // Checkpoint: serialise nothing (the host JSON is prepared once, as the
    // reactor does from its drained parts), atomically write, compact.
    let host_json = host().to_json();
    let ck_dir = bench_dir("checkpoint");
    let mut ck_store = WalStore::create(StoreConfig::new(&ck_dir), &host()).unwrap();
    let mut ck_epoch = 0u64;
    h.bench("checkpoint/write_and_compact", || {
        ck_epoch += 1;
        ck_store.append_window(ck_epoch, &window(ck_epoch)).unwrap();
        ck_store.checkpoint(ck_epoch, &host_json).unwrap();
        ck_epoch
    });

    // Recovery: seed a log with REPLAY_WINDOWS windows past the initial
    // checkpoint, then measure scan-only and full checkpoint+replay.
    let rec_dir = bench_dir("recover");
    {
        let mut seed = WalStore::create(StoreConfig::new(&rec_dir), &host()).unwrap();
        for k in 1..=REPLAY_WINDOWS as u64 {
            seed.append_window(k, &window(k)).unwrap();
        }
    }
    h.bench("recovery/scan_log_only", || {
        read_windows(&rec_dir).unwrap().len()
    });
    h.bench("recovery/checkpoint_plus_replay", || {
        let rec = recover(StoreConfig::new(&rec_dir)).unwrap();
        assert_eq!(rec.windows_replayed, REPLAY_WINDOWS as u64);
        rec.host.batches_recorded()
    });

    for d in [&append_dir, &ck_dir, &rec_dir] {
        let _ = fs::remove_dir_all(d);
    }
    h.finish();
}
