//! Incremental truncated-SVD update vs full refactorisation.
//!
//! Two workloads:
//!
//! * `svd_update_kernel/*` — one delta-sparse window against a single
//!   level-1-sized sparse block: the Brand/Zha–Simon update and the core
//!   patch vs a fresh sparse randomized SVD. This isolates the kernel
//!   speedup the three-tier policy buys per fired block.
//! * `engine_apply_batch/*` — end-to-end `ShardedEngine` flushes under the
//!   exact-lazy and incremental policies, with a build-only anchor so the
//!   per-window update cost can be read off by subtraction. Small windows
//!   on a large graph keep each block delta-sparse (changed rows well
//!   under the `2·dim` cost gate) so the cheap tiers engage; per-tier
//!   repair counters are recorded as params.

use tsvd_bench::setup::standard_setup;
use tsvd_core::{TreeSvdConfig, UpdatePolicy};
use tsvd_datasets::DatasetConfig;
use tsvd_graph::EdgeEvent;
use tsvd_linalg::randomized::randomized_svd;
use tsvd_linalg::{svd_core_patch, svd_update_rows, CsrMatrix, RandomizedSvdConfig, RowDelta};
use tsvd_rt::bench::BenchHarness;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::ShardedEngine;

fn random_events(n_nodes: usize, len: usize, seed: u64) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let u = rng.gen_range(0..n_nodes) as u32;
            let v = rng.gen_range(0..n_nodes) as u32;
            EdgeEvent::insert(u, v)
        })
        .filter(|e| e.u != e.v)
        .collect()
}

fn sparse_rows(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> Vec<Vec<(u32, f64)>> {
    (0..rows)
        .map(|_| {
            let mut r: Vec<(u32, f64)> = Vec::new();
            for c in 0..cols as u32 {
                if rng.gen_bool(density) {
                    r.push((c, rng.gen_range(0.1..2.0)));
                }
            }
            r
        })
        .collect()
}

fn main() {
    let mut h = BenchHarness::from_args("svd_update");

    // --- Kernel workload: one delta-sparse window on one block. ---
    let (rows, cols, rank, changed) = (400usize, 2048usize, 32usize, 16usize);
    let mut rng = StdRng::seed_from_u64(3);
    let mut block_rows = sparse_rows(&mut rng, rows, cols, 0.02);
    let block = CsrMatrix::from_rows(cols, &block_rows);
    let rcfg = RandomizedSvdConfig {
        rank,
        oversample: 8,
        power_iters: 1,
    };
    let base = randomized_svd(&block, &rcfg, &mut StdRng::seed_from_u64(7));
    // `changed` rows gain small sparse deltas (a delta-sparse window).
    let deltas: Vec<RowDelta> = (0..changed)
        .map(|i| {
            let row = i * rows / changed;
            let mut entries: Vec<(u32, f64)> = Vec::new();
            for c in 0..cols as u32 {
                if rng.gen_bool(0.01) {
                    entries.push((c, rng.gen_range(-0.1..0.1)));
                }
            }
            RowDelta { row, entries }
        })
        .collect();
    for d in &deltas {
        let mut merged = d.entries.clone();
        for &(c, v) in &block_rows[d.row] {
            match merged.binary_search_by_key(&c, |e| e.0) {
                Ok(p) => merged[p].1 += v,
                Err(p) => merged.insert(p, (c, v)),
            }
        }
        block_rows[d.row] = merged;
    }
    let updated = CsrMatrix::from_rows(cols, &block_rows);
    h.record_param("kernel_block_rows", rows as u64);
    h.record_param("kernel_block_cols", cols as u64);
    h.record_param("kernel_block_nnz", updated.nnz() as u64);
    h.record_param("kernel_rank", rank as u64);
    h.record_param("kernel_changed_rows", changed as u64);
    h.bench("svd_update_kernel/incremental", || {
        svd_update_rows(&base, &deltas, rank)
    });
    h.bench("svd_update_kernel/core_patch", || {
        svd_core_patch(&base, &deltas)
    });
    h.bench("svd_update_kernel/refactor", || {
        randomized_svd(&updated, &rcfg, &mut StdRng::seed_from_u64(7))
    });

    // --- End-to-end engine flushes, exact vs incremental policy. ---
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 5000;
    cfg.num_edges = 25_000;
    cfg.tau = 2;
    let s = standard_setup(&cfg);
    let g0 = s.dataset.stream.snapshot(2);
    let batch = 16usize;
    let num_windows = 8usize;
    let events = random_events(g0.num_nodes(), batch * num_windows, 42);
    let windows: Vec<&[EdgeEvent]> = events.chunks(batch).collect();
    h.record_param("batch_window_events", batch as u64);
    h.record_param("engine_windows", num_windows as u64);
    h.record_param("subset_size", s.subset.len() as u64);

    h.bench("engine_apply_batch/build_only", || {
        ShardedEngine::new(&g0, &s.subset, 1, s.ppr_cfg, s.tree_cfg).epoch()
    });
    for (name, policy) in [
        ("exact_lazy", UpdatePolicy::Lazy { delta: 0.3 }),
        ("incremental", UpdatePolicy::lazy_incremental(0.3)),
    ] {
        let tree_cfg = TreeSvdConfig {
            policy,
            ..s.tree_cfg
        };
        h.bench(&format!("engine_apply_batch/{name}"), || {
            let mut engine = ShardedEngine::new(&g0, &s.subset, 1, s.ppr_cfg, tree_cfg);
            for w in &windows {
                engine.apply_batch(w);
            }
            engine.epoch()
        });
        // Per-tier repair counters from one (untimed) run.
        let mut engine = ShardedEngine::new(&g0, &s.subset, 1, s.ppr_cfg, tree_cfg);
        for w in &windows {
            engine.apply_batch(w);
        }
        let t = engine.total_stats();
        h.record_param(&format!("{name}_blocks_patched"), t.blocks_patched as u64);
        h.record_param(
            &format!("{name}_blocks_incremental"),
            t.blocks_incremental as u64,
        );
        h.record_param(
            &format!("{name}_blocks_refactored"),
            t.blocks_recomputed as u64,
        );
    }
    h.finish();
}
