//! Serving-layer benchmark: end-to-end flush latency (submit → new epoch
//! published) of the sharded server across shard counts, plus the raw
//! sharded-engine batch-apply cost and the reader's snapshot-load cost.
//!
//! Shard count `R` and the batching window are recorded in the bench JSON
//! (`params`) so runs at different serving shapes are comparable.

use std::time::Duration;

use tsvd_bench::setup::standard_setup;
use tsvd_core::TreeSvdConfig;
use tsvd_datasets::DatasetConfig;
use tsvd_graph::EdgeEvent;
use tsvd_rt::bench::BenchHarness;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::{EmbeddingServer, FlushPipeline, ServeConfig, ShardedEngine, TenantHost};

fn random_events(n_nodes: usize, len: usize, seed: u64) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let u = rng.gen_range(0..n_nodes) as u32;
            let v = rng.gen_range(0..n_nodes) as u32;
            EdgeEvent::insert(u, v)
        })
        .filter(|e| e.u != e.v)
        .collect()
}

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 5000;
    cfg.num_edges = 25_000;
    cfg.tau = 2;
    let s = standard_setup(&cfg);
    let g0 = s.dataset.stream.snapshot(2);
    let tree_cfg = TreeSvdConfig { ..s.tree_cfg };

    let batch = 256usize;
    let serve_cfg = ServeConfig {
        num_shards: 1, // per-case override below; recorded per run
        flush_max_events: batch,
        flush_interval_ms: 60_000, // count-triggered only: measure the flush
        coalesce: true,
        ..Default::default()
    };

    let mut h = BenchHarness::from_args("serving");
    h.record_param("batch_window_events", batch as u64);
    h.record_param("flush_interval_ms", serve_cfg.flush_interval_ms);
    h.record_param("subset_size", s.subset.len() as u64);
    let shard_counts = [1usize, 2, 4, 8];
    h.record_param(
        "shard_counts",
        shard_counts.iter().map(|&r| r as u64).collect::<Vec<u64>>(),
    );

    // Raw engine: one coalesced batch through apply_batch, per shard count.
    for &r in &shard_counts {
        let events = random_events(g0.num_nodes(), batch, 42);
        h.bench(&format!("engine_apply_batch/shards_{r}"), || {
            let mut engine = ShardedEngine::new(&g0, &s.subset, r, s.ppr_cfg, tree_cfg);
            engine.apply_batch(&events);
            engine.epoch()
        });
    }

    // Full server round trip: submit a window, block until its epoch is
    // published (mailbox hop + batcher + engine + snapshot publish).
    for &r in &shard_counts {
        let engine = ShardedEngine::new(&g0, &s.subset, r, s.ppr_cfg, tree_cfg);
        let server = EmbeddingServer::start(
            engine,
            ServeConfig {
                num_shards: r,
                ..serve_cfg
            },
        );
        let reader = server.reader();
        let mut round = 0u64;
        h.bench(&format!("flush_round_trip/shards_{r}"), || {
            round += 1;
            let events = random_events(g0.num_nodes(), batch, round);
            let want = server.epoch() + 1;
            server.submit_batch(events); // exactly one count-triggered flush
            assert!(
                reader.wait_for_epoch(want, Duration::from_secs(120)),
                "flush never published"
            );
            want
        });
        server.shutdown();
    }

    // Flush pipelining: a burst of windows back-to-back through the
    // two-stage pipeline, ending in a drain — one iteration is the
    // end-to-end latency of `pipeline_windows` windows. At depth 1 phase 1
    // (PPR replay + row rebuild) of window k+1 overlaps phase 2 (Tree-SVD
    // refresh) of window k; at depth 0 the same pipeline runs both phases
    // serially, so the depth-0/depth-1 delta is the measured win. The
    // accumulated overlap is recorded as a param next to the timings.
    let pipeline_windows = 4usize;
    h.record_param("pipeline_windows_per_iter", pipeline_windows as u64);
    for depth in [0usize, 1] {
        for &r in &shard_counts {
            let engine = ShardedEngine::new(&g0, &s.subset, r, s.ppr_cfg, tree_cfg);
            let mut pipe = FlushPipeline::new(engine, depth);
            let mut overlap = 0.0f64;
            let mut round = 0u64;
            h.bench(&format!("flush_pipeline/depth_{depth}/shards_{r}"), || {
                let mut epoch = 0u64;
                for _ in 0..pipeline_windows {
                    round += 1;
                    let events = random_events(g0.num_nodes(), batch, round);
                    for o in pipe.submit_window(&events) {
                        overlap += o.overlapped_secs;
                        epoch = o.epoch;
                    }
                }
                if let Some(o) = pipe.drain() {
                    overlap += o.overlapped_secs;
                    epoch = o.epoch;
                }
                epoch
            });
            h.record_param(
                &format!("overlapped_secs/depth_{depth}/shards_{r}"),
                overlap,
            );
        }
    }

    // Multi-tenant fan-out: one window recorded once on the shared graph
    // and replayed into every tenant — the per-window cost should grow
    // with the tenant count in the replay/refresh stages only, never in
    // the (shared) graph-mutation stage. Distinct overlapping subsets per
    // tenant, two shards each.
    let tenant_counts = [1usize, 2, 4];
    h.record_param(
        "tenant_counts",
        tenant_counts
            .iter()
            .map(|&t| t as u64)
            .collect::<Vec<u64>>(),
    );
    for &nt in &tenant_counts {
        let mut host = TenantHost::new(&g0);
        for t in 0..nt {
            let subset: Vec<u32> = s
                .subset
                .iter()
                .skip(t * 4)
                .take(s.subset.len() - 8)
                .copied()
                .collect();
            host.register(t as u32, &subset, 2, s.ppr_cfg, tree_cfg)
                .expect("fresh tenant id");
        }
        let mut round = 10_000u64;
        h.bench(&format!("multi_tenant/tenants_{nt}"), || {
            round += 1;
            let events = random_events(g0.num_nodes(), batch, round);
            host.apply_batch(&events).len()
        });
    }

    // Reader side: snapshot load + one embedding lookup under no writes.
    let engine = ShardedEngine::new(&g0, &s.subset, 4, s.ppr_cfg, tree_cfg);
    let server = EmbeddingServer::start(engine, serve_cfg);
    let reader = server.reader();
    let probe = s.subset[0];
    h.bench("reader_snapshot_get", || {
        let snap = reader.snapshot();
        snap.get(probe).map(|v| v[0].to_bits())
    });
    server.shutdown();

    h.finish();
}
