//! Criterion micro-benchmarks for the PPR engine: fresh pushes (dense
//! workspace vs sparse state) and dynamic updates at several batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsvd_datasets::{DatasetConfig, SyntheticDataset};
use tsvd_graph::{Direction, DynGraph, EdgeEvent};
use tsvd_ppr::dynamic::{dynamic_update, record_events};
use tsvd_ppr::FreshPushWorkspace;
use tsvd_ppr::{forward_push, PprState};

fn test_graph() -> (SyntheticDataset, DynGraph) {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 5000;
    cfg.num_edges = 25_000;
    cfg.tau = 2;
    let ds = SyntheticDataset::generate(&cfg);
    let g = ds.stream.snapshot(2);
    (ds, g)
}

fn bench_fresh_push(c: &mut Criterion) {
    let (_, g) = test_graph();
    let mut group = c.benchmark_group("fresh_push");
    for &r_max in &[1e-4_f64, 1e-5] {
        group.bench_with_input(
            BenchmarkId::new("dense_workspace", format!("{r_max:.0e}")),
            &r_max,
            |b, &r_max| {
                let mut ws = FreshPushWorkspace::new(g.num_nodes());
                b.iter(|| ws.run(&g, Direction::Out, 0.2, r_max, 17))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sparse_state", format!("{r_max:.0e}")),
            &r_max,
            |b, &r_max| {
                b.iter(|| {
                    let mut st = PprState::new(17);
                    forward_push(&g, Direction::Out, 0.2, r_max, &mut st);
                    st
                })
            },
        );
    }
    group.finish();
}

fn bench_dynamic_update(c: &mut Criterion) {
    let (_, g0) = test_graph();
    let mut group = c.benchmark_group("dynamic_push_update");
    group.sample_size(20);
    for &batch in &[10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_with_setup(
                || {
                    let mut g = g0.clone();
                    let mut st = PprState::new(17);
                    forward_push(&g, Direction::Out, 0.2, 1e-5, &mut st);
                    let mut rng = StdRng::seed_from_u64(9);
                    let events: Vec<EdgeEvent> = (0..batch)
                        .map(|_| {
                            let u = rng.gen_range(0..g.num_nodes()) as u32;
                            let v = rng.gen_range(0..g.num_nodes()) as u32;
                            EdgeEvent::insert(u, v)
                        })
                        .collect();
                    let (rec, _) = record_events(&mut g, &events);
                    (g, st, rec)
                },
                |(g, mut st, rec)| {
                    dynamic_update(&g, Direction::Out, 0.2, 1e-5, &mut st, &rec);
                    st
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fresh_push, bench_dynamic_update);
criterion_main!(benches);
