//! Micro-benchmarks for the PPR engine: fresh pushes (dense workspace vs
//! sparse state) and dynamic updates at several batch sizes.

use tsvd_datasets::{DatasetConfig, SyntheticDataset};
use tsvd_graph::{Direction, DynGraph, EdgeEvent};
use tsvd_ppr::dynamic::{dynamic_update, record_events};
use tsvd_ppr::FreshPushWorkspace;
use tsvd_ppr::{forward_push, PprState};
use tsvd_rt::bench::BenchHarness;
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

fn test_graph() -> (SyntheticDataset, DynGraph) {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 5000;
    cfg.num_edges = 25_000;
    cfg.tau = 2;
    let ds = SyntheticDataset::generate(&cfg);
    let g = ds.stream.snapshot(2);
    (ds, g)
}

fn bench_fresh_push(h: &mut BenchHarness, g: &DynGraph) {
    for &r_max in &[1e-4_f64, 1e-5] {
        let mut ws = FreshPushWorkspace::new(g.num_nodes());
        h.bench(&format!("fresh_push/dense_workspace/{r_max:.0e}"), || {
            ws.run(g, Direction::Out, 0.2, r_max, 17)
        });
        h.bench(&format!("fresh_push/sparse_state/{r_max:.0e}"), || {
            let mut st = PprState::new(17);
            forward_push(g, Direction::Out, 0.2, r_max, &mut st);
            st
        });
    }
}

fn bench_dynamic_update(h: &mut BenchHarness, g0: &DynGraph) {
    for &batch in &[10usize, 100, 1000] {
        // Setup (graph clone + fresh push + event recording) is rebuilt per
        // iteration and excluded from the timed region by doing it eagerly
        // here and timing only the incremental update on clones.
        let mut base = g0.clone();
        let mut st0 = PprState::new(17);
        forward_push(&base, Direction::Out, 0.2, 1e-5, &mut st0);
        let mut rng = StdRng::seed_from_u64(9);
        let events: Vec<EdgeEvent> = (0..batch)
            .map(|_| {
                let u = rng.gen_range(0..base.num_nodes()) as u32;
                let v = rng.gen_range(0..base.num_nodes()) as u32;
                EdgeEvent::insert(u, v)
            })
            .collect();
        let (rec, _) = record_events(&mut base, &events);
        h.bench(&format!("dynamic_push_update/{batch}"), || {
            let mut st = st0.clone();
            dynamic_update(&base, Direction::Out, 0.2, 1e-5, &mut st, &rec);
            st
        });
    }
}

fn main() {
    let (_, g) = test_graph();
    let mut h = BenchHarness::from_args("forward_push");
    bench_fresh_push(&mut h, &g);
    bench_dynamic_update(&mut h, &g);
    h.finish();
}
