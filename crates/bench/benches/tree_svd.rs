//! Criterion benchmarks of the static factorisation frameworks on one
//! shared proximity matrix: Tree-SVD-S vs HSVD vs flat randomized SVD
//! (FRPCA) vs Subset-STRAP's factoriser — the kernel comparison behind
//! the paper's Figure 5.

use criterion::{criterion_group, criterion_main, Criterion};
use tsvd_baselines::{FrPca, SubsetStrap};
use tsvd_bench::methods::blocked_proximity;
use tsvd_bench::setup::standard_setup;
use tsvd_core::{Level1Method, TreeSvd, TreeSvdConfig};
use tsvd_datasets::DatasetConfig;

fn bench_frameworks(c: &mut Criterion) {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 6000;
    cfg.num_edges = 30_000;
    cfg.tau = 2;
    let s = standard_setup(&cfg);
    let g = s.dataset.stream.snapshot(2);
    let m = blocked_proximity(&g, &s.subset, s.ppr_cfg, s.tree_cfg.num_blocks);
    let csr = m.to_csr();
    eprintln!("proximity matrix: {}x{} nnz {}", csr.rows(), csr.cols(), csr.nnz());

    let mut group = c.benchmark_group("factorisation");
    group.sample_size(10);
    group.bench_function("tree_svd_s", |b| {
        let tree = TreeSvd::new(s.tree_cfg);
        b.iter(|| tree.embed(&m))
    });
    group.bench_function("hsvd_exact_level1", |b| {
        let tree = TreeSvd::new(TreeSvdConfig { level1: Level1Method::Exact, ..s.tree_cfg });
        b.iter(|| tree.embed(&m))
    });
    group.bench_function("frpca_flat", |b| {
        let f = FrPca::new(s.tree_cfg.dim, 7);
        b.iter(|| f.factorize(&csr))
    });
    group.bench_function("subset_strap_factorize", |b| {
        let strap = SubsetStrap::new(s.tree_cfg.dim, 7);
        b.iter(|| strap.factorize(&csr))
    });
    group.finish();
}

criterion_group!(benches, bench_frameworks);
criterion_main!(benches);
