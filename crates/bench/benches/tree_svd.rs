//! Benchmarks of the static factorisation frameworks on one shared
//! proximity matrix: Tree-SVD-S vs HSVD vs flat randomized SVD (FRPCA) vs
//! Subset-STRAP's factoriser — the kernel comparison behind the paper's
//! Figure 5.

use tsvd_baselines::{FrPca, SubsetStrap};
use tsvd_bench::methods::blocked_proximity;
use tsvd_bench::setup::standard_setup;
use tsvd_core::{Level1Method, TreeSvd, TreeSvdConfig};
use tsvd_datasets::DatasetConfig;
use tsvd_rt::bench::BenchHarness;

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 6000;
    cfg.num_edges = 30_000;
    cfg.tau = 2;
    let s = standard_setup(&cfg);
    let g = s.dataset.stream.snapshot(2);
    let m = blocked_proximity(&g, &s.subset, s.ppr_cfg, s.tree_cfg.num_blocks);
    let csr = m.to_csr();
    eprintln!(
        "proximity matrix: {}x{} nnz {}",
        csr.rows(),
        csr.cols(),
        csr.nnz()
    );

    let mut h = BenchHarness::from_args("tree_svd");
    let tree = TreeSvd::new(s.tree_cfg);
    h.bench("factorisation/tree_svd_s", || tree.embed(&m));
    let hsvd = TreeSvd::new(TreeSvdConfig {
        level1: Level1Method::Exact,
        ..s.tree_cfg
    });
    h.bench("factorisation/hsvd_exact_level1", || hsvd.embed(&m));
    let frpca = FrPca::new(s.tree_cfg.dim, 7);
    h.bench("factorisation/frpca_flat", || frpca.factorize(&csr));
    let strap = SubsetStrap::new(s.tree_cfg.dim, 7);
    h.bench("factorisation/subset_strap_factorize", || {
        strap.factorize(&csr)
    });
    h.finish();
}
