//! Micro-benchmarks for the SVD kernels: Householder QR, exact SVD
//! (Golub–Reinsch), randomized SVD dense vs sparse, and the
//! Frequent-Directions sketch.

use tsvd_linalg::qr::qr;
use tsvd_linalg::randomized::randomized_svd;
use tsvd_linalg::rng::gaussian_matrix;
use tsvd_linalg::sketch::FrequentDirections;
use tsvd_linalg::svd::exact_svd;
use tsvd_linalg::{CsrMatrix, RandomizedSvdConfig};
use tsvd_rt::bench::BenchHarness;
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> CsrMatrix {
    let data: Vec<Vec<(u32, f64)>> = (0..rows)
        .map(|_| {
            let mut r = Vec::new();
            for c in 0..cols as u32 {
                if rng.gen_bool(density) {
                    r.push((c, rng.gen_range(0.1..2.0)));
                }
            }
            r
        })
        .collect();
    CsrMatrix::from_rows(cols, &data)
}

fn bench_qr(h: &mut BenchHarness) {
    for &(m, n) in &[(300usize, 72usize), (300, 288)] {
        let a = gaussian_matrix(&mut StdRng::seed_from_u64(1), m, n);
        h.bench(&format!("qr/householder/{m}x{n}"), || qr(&a));
    }
}

fn bench_exact_svd(h: &mut BenchHarness) {
    // 300×288 is the merge-matrix shape Tree-SVD factorises at interior
    // levels (k·d columns).
    for &(m, n) in &[(300usize, 64usize), (300, 288), (128, 128)] {
        let a = gaussian_matrix(&mut StdRng::seed_from_u64(2), m, n);
        h.bench(&format!("exact_svd/golub_reinsch/{m}x{n}"), || {
            exact_svd(&a)
        });
    }
}

fn bench_randomized_svd(h: &mut BenchHarness) {
    let mut rng = StdRng::seed_from_u64(3);
    let sparse = random_csr(&mut rng, 300, 4000, 0.05);
    let dense = sparse.to_dense();
    let cfg = RandomizedSvdConfig {
        rank: 64,
        oversample: 8,
        power_iters: 1,
    };
    h.bench("randomized_svd/sparse_300x4000_d64", || {
        randomized_svd(&sparse, &cfg, &mut StdRng::seed_from_u64(7))
    });
    h.bench("randomized_svd/dense_300x4000_d64", || {
        randomized_svd(&dense, &cfg, &mut StdRng::seed_from_u64(7))
    });
}

fn bench_frequent_directions(h: &mut BenchHarness) {
    let mut rng = StdRng::seed_from_u64(4);
    let rows: Vec<Vec<(u32, f64)>> = (0..300)
        .map(|_| {
            let mut r = Vec::new();
            for col in 0..2000u32 {
                if rng.gen_bool(0.05) {
                    r.push((col, rng.gen_range(0.1..2.0)));
                }
            }
            r
        })
        .collect();
    h.bench("frequent_directions_300x2000_l64", || {
        let mut fd = FrequentDirections::new(64, 2000);
        for r in &rows {
            fd.append_sparse(r);
        }
        fd.sketch()
    });
}

fn main() {
    let mut h = BenchHarness::from_args("svd_kernels");
    bench_qr(&mut h);
    bench_exact_svd(&mut h);
    bench_randomized_svd(&mut h);
    bench_frequent_directions(&mut h);
    h.finish();
}
