//! Criterion micro-benchmarks for the SVD kernels: Householder QR, exact
//! SVD (Golub–Reinsch), randomized SVD dense vs sparse, and the
//! Frequent-Directions sketch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsvd_linalg::qr::qr;
use tsvd_linalg::randomized::randomized_svd;
use tsvd_linalg::rng::gaussian_matrix;
use tsvd_linalg::sketch::FrequentDirections;
use tsvd_linalg::svd::exact_svd;
use tsvd_linalg::{CsrMatrix, RandomizedSvdConfig};

fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> CsrMatrix {
    let data: Vec<Vec<(u32, f64)>> = (0..rows)
        .map(|_| {
            let mut r = Vec::new();
            for c in 0..cols as u32 {
                if rng.gen_bool(density) {
                    r.push((c, rng.gen_range(0.1..2.0)));
                }
            }
            r
        })
        .collect();
    CsrMatrix::from_rows(cols, &data)
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    for &(m, n) in &[(300usize, 72usize), (300, 288)] {
        let a = gaussian_matrix(&mut StdRng::seed_from_u64(1), m, n);
        group.bench_with_input(BenchmarkId::new("householder", format!("{m}x{n}")), &a, |b, a| {
            b.iter(|| qr(a))
        });
    }
    group.finish();
}

fn bench_exact_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_svd");
    // 300×288 is the merge-matrix shape Tree-SVD factorises at interior
    // levels (k·d columns).
    for &(m, n) in &[(300usize, 64usize), (300, 288), (128, 128)] {
        let a = gaussian_matrix(&mut StdRng::seed_from_u64(2), m, n);
        group.bench_with_input(BenchmarkId::new("golub_reinsch", format!("{m}x{n}")), &a, |b, a| {
            b.iter(|| exact_svd(a))
        });
    }
    group.finish();
}

fn bench_randomized_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomized_svd");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(3);
    let sparse = random_csr(&mut rng, 300, 4000, 0.05);
    let dense = sparse.to_dense();
    let cfg = RandomizedSvdConfig { rank: 64, oversample: 8, power_iters: 1 };
    group.bench_function("sparse_300x4000_d64", |b| {
        b.iter(|| randomized_svd(&sparse, &cfg, &mut StdRng::seed_from_u64(7)))
    });
    group.bench_function("dense_300x4000_d64", |b| {
        b.iter(|| randomized_svd(&dense, &cfg, &mut StdRng::seed_from_u64(7)))
    });
    group.finish();
}

fn bench_frequent_directions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let rows: Vec<Vec<(u32, f64)>> = (0..300)
        .map(|_| {
            let mut r = Vec::new();
            for col in 0..2000u32 {
                if rng.gen_bool(0.05) {
                    r.push((col, rng.gen_range(0.1..2.0)));
                }
            }
            r
        })
        .collect();
    c.bench_function("frequent_directions_300x2000_l64", |b| {
        b.iter(|| {
            let mut fd = FrequentDirections::new(64, 2000);
            for r in &rows {
                fd.append_sparse(r);
            }
            fd.sketch()
        })
    });
}

criterion_group!(
    benches,
    bench_qr,
    bench_exact_svd,
    bench_randomized_svd,
    bench_frequent_directions
);
criterion_main!(benches);
