//! Benchmark of the dynamic update path: lazy Tree-SVD vs the eager
//! (changed-only) policy vs a full static rebuild, per event batch — the
//! micro-scale version of the paper's Exp. 4.

use tsvd_bench::setup::standard_setup;
use tsvd_core::{TreeSvd, TreeSvdConfig, TreeSvdPipeline, UpdatePolicy};
use tsvd_datasets::DatasetConfig;
use tsvd_graph::EdgeEvent;
use tsvd_rt::bench::BenchHarness;
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 6000;
    cfg.num_edges = 30_000;
    cfg.tau = 2;
    let s = standard_setup(&cfg);
    let g0 = s.dataset.stream.snapshot(2);

    let mut h = BenchHarness::from_args("dynamic_update");
    for (name, policy) in [
        ("lazy_065", UpdatePolicy::Lazy { delta: 0.65 }),
        ("eager_changed_only", UpdatePolicy::ChangedOnly),
        ("rebuild_all", UpdatePolicy::All),
    ] {
        // Each iteration rebuilds the pipeline from the same snapshot so the
        // timed region covers exactly one batch update from a fixed state.
        h.bench(&format!("dynamic_update_per_batch/{name}"), || {
            let tree_cfg = TreeSvdConfig {
                policy,
                ..s.tree_cfg
            };
            let mut g = g0.clone();
            let mut pipe = TreeSvdPipeline::new(&g, &s.subset, s.ppr_cfg, tree_cfg);
            let mut rng = StdRng::seed_from_u64(5);
            let events: Vec<EdgeEvent> = (0..200)
                .map(|_| {
                    let u = rng.gen_range(0..g.num_nodes()) as u32;
                    let v = rng.gen_range(0..g.num_nodes()) as u32;
                    EdgeEvent::insert(u, v)
                })
                .collect();
            pipe.update(&mut g, &events);
            pipe
        });
    }
    // Baseline anchor: a full static Tree-SVD factorisation (no PPR work).
    let pipe = TreeSvdPipeline::new(&g0, &s.subset, s.ppr_cfg, s.tree_cfg);
    let tree = TreeSvd::new(s.tree_cfg);
    h.bench("dynamic_update_per_batch/static_factorise_only", || {
        tree.embed(pipe.matrix())
    });
    h.finish();
}
