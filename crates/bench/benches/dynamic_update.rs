//! Criterion benchmark of the dynamic update path: lazy Tree-SVD vs the
//! eager (changed-only) policy vs a full static rebuild, per event batch —
//! the micro-scale version of the paper's Exp. 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsvd_bench::setup::standard_setup;
use tsvd_core::{TreeSvd, TreeSvdConfig, TreeSvdPipeline, UpdatePolicy};
use tsvd_datasets::DatasetConfig;
use tsvd_graph::EdgeEvent;

fn bench_update_policies(c: &mut Criterion) {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 6000;
    cfg.num_edges = 30_000;
    cfg.tau = 2;
    let s = standard_setup(&cfg);
    let g0 = s.dataset.stream.snapshot(2);

    let mut group = c.benchmark_group("dynamic_update_per_batch");
    group.sample_size(10);
    for (name, policy) in [
        ("lazy_065", UpdatePolicy::Lazy { delta: 0.65 }),
        ("eager_changed_only", UpdatePolicy::ChangedOnly),
        ("rebuild_all", UpdatePolicy::All),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter_with_setup(
                || {
                    let tree_cfg = TreeSvdConfig { policy, ..s.tree_cfg };
                    let g = g0.clone();
                    let pipe = TreeSvdPipeline::new(&g, &s.subset, s.ppr_cfg, tree_cfg);
                    let mut rng = StdRng::seed_from_u64(5);
                    let events: Vec<EdgeEvent> = (0..200)
                        .map(|_| {
                            let u = rng.gen_range(0..g.num_nodes()) as u32;
                            let v = rng.gen_range(0..g.num_nodes()) as u32;
                            EdgeEvent::insert(u, v)
                        })
                        .collect();
                    (g, pipe, events)
                },
                |(mut g, mut pipe, events)| {
                    pipe.update(&mut g, &events);
                    pipe
                },
            )
        });
    }
    // Baseline anchor: a full static Tree-SVD factorisation (no PPR work).
    group.bench_function("static_factorise_only", |b| {
        let pipe = TreeSvdPipeline::new(&g0, &s.subset, s.ppr_cfg, s.tree_cfg);
        let tree = TreeSvd::new(s.tree_cfg);
        b.iter(|| tree.embed(pipe.matrix()))
    });
    group.finish();
}

criterion_group!(benches, bench_update_policies);
criterion_main!(benches);
