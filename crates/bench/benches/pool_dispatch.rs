//! Dispatch-overhead microbenchmark: the persistent `rt::pool` vs spawning
//! fresh scoped threads per region (the seed's strategy) vs plain serial.
//!
//! The interesting regime is *small batches* — the per-update fan-outs of
//! Algorithms 2 and 4, where the parallel region body is microseconds and
//! per-region thread spawn/join used to dominate. The spawn variant below
//! reproduces the seed's `tsvd_graph::par::par_map` verbatim so the two
//! sides dispatch the same chunked index loop and differ only in how the
//! worker threads come to exist.

use std::sync::atomic::{AtomicUsize, Ordering};
use tsvd_rt::bench::BenchHarness;
use tsvd_rt::pool;

/// The seed's per-call implementation: spawn `num_threads()` scoped threads
/// per region, dynamic chunking off a shared atomic counter.
fn spawned_par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = pool::num_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let chunk = (n / (threads * 8)).max(1);
    let out_ptr = pool::SendPtr::new(out.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            let out_ptr = &out_ptr;
            s.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    let v = f(i);
                    // SAFETY: each index is claimed by exactly one thread
                    // via the atomic counter; `out` outlives the scope.
                    unsafe { *out_ptr.get().add(i) = Some(v) };
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("worker filled every slot"))
        .collect()
}

/// A few hundred nanoseconds of integer work — the scale of one dynamic
/// forward-push touch-up on a quiet source.
fn busy_work(i: usize, rounds: usize) -> u64 {
    let mut x = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
    for _ in 0..rounds {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
    }
    x
}

fn main() {
    let mut h = BenchHarness::from_args("pool_dispatch");
    // Warm the pool outside the timed region so the first benchmark does
    // not pay one-off worker spawning.
    pool::par_map(64, |i| i).len();
    for &batch in &[8usize, 64, 512] {
        h.bench(&format!("pool_par_map/batch_{batch}"), || {
            pool::par_map(batch, |i| busy_work(i, 100))
        });
        h.bench(&format!("spawn_par_map/batch_{batch}"), || {
            spawned_par_map(batch, |i| busy_work(i, 100))
        });
        h.bench(&format!("serial/batch_{batch}"), || {
            (0..batch).map(|i| busy_work(i, 100)).collect::<Vec<u64>>()
        });
    }
    h.finish();
}
