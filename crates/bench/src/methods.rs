//! Uniform method runners: every embedding method as
//! `graph × subset → (EmbeddingPair, seconds)`, timed end to end
//! (PPR/proximity construction included, as in the paper's embedding-time
//! plots).

use crate::harness::timed;
use crate::setup::ExpSetup;
use tsvd_baselines::{
    DynPpe, EmbeddingPair, FrPca, Frede, GlobalStrap, RandNe, RandNeConfig, SubsetStrap,
};
use tsvd_core::{BlockedProximityMatrix, Level1Method, TreeSvd, TreeSvdConfig};
use tsvd_graph::DynGraph;
use tsvd_linalg::CsrMatrix;
use tsvd_ppr::{PprConfig, SubsetPpr};

/// Every method the static experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Static Tree-SVD (this paper).
    TreeSvdS,
    /// Tree-SVD with exact first-level SVDs — the HSVD baseline.
    Hsvd,
    /// Subset-STRAP.
    SubsetStrap,
    /// Global-STRAP (budget-equalised global embedding).
    GlobalStrap,
    /// DynPPE hashing embedder.
    DynPpe,
    /// FREDE sketching embedder.
    Frede,
    /// RandNE iterative random projection.
    RandNe,
    /// FRPCA flat randomized SVD.
    FrPca,
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::TreeSvdS => "Tree-SVD-S",
            Method::Hsvd => "HSVD",
            Method::SubsetStrap => "Subset-STRAP",
            Method::GlobalStrap => "Global-STRAP",
            Method::DynPpe => "DynPPE",
            Method::Frede => "FREDE",
            Method::RandNe => "RandNE",
            Method::FrPca => "FRPCA",
        }
    }
}

/// Build the subset proximity matrix (PPR both directions + log transform).
pub fn proximity(g: &DynGraph, subset: &[u32], ppr_cfg: PprConfig) -> CsrMatrix {
    let ppr = SubsetPpr::build(g, subset, ppr_cfg);
    tsvd_baselines::proximity_csr(&ppr, g.num_nodes())
}

/// Blocked variant of [`proximity`] for the tree methods.
pub fn blocked_proximity(
    g: &DynGraph,
    subset: &[u32],
    ppr_cfg: PprConfig,
    num_blocks: usize,
) -> BlockedProximityMatrix {
    let ppr = SubsetPpr::build(g, subset, ppr_cfg);
    let mut m = BlockedProximityMatrix::new(subset.len(), g.num_nodes(), num_blocks);
    for (i, row) in ppr.proximity_rows().into_iter().enumerate() {
        m.set_row(i, &row);
    }
    m
}

/// Run one method end to end on graph `g`, returning the embedding pair and
/// the wall-clock embedding time in seconds.
pub fn run_static(method: Method, g: &DynGraph, s: &ExpSetup) -> (EmbeddingPair, f64) {
    let dim = s.tree_cfg.dim;
    match method {
        Method::TreeSvdS => timed(|| {
            let m = blocked_proximity(g, &s.subset, s.ppr_cfg, s.tree_cfg.num_blocks);
            let emb = TreeSvd::new(s.tree_cfg).embed(&m);
            let csr = m.to_csr();
            EmbeddingPair {
                left: emb.left(),
                right: Some(emb.right(&csr)),
            }
        }),
        Method::Hsvd => timed(|| {
            let cfg = TreeSvdConfig {
                level1: Level1Method::Exact,
                ..s.tree_cfg
            };
            let m = blocked_proximity(g, &s.subset, s.ppr_cfg, cfg.num_blocks);
            let emb = TreeSvd::new(cfg).embed(&m);
            let csr = m.to_csr();
            EmbeddingPair {
                left: emb.left(),
                right: Some(emb.right(&csr)),
            }
        }),
        Method::SubsetStrap => {
            timed(|| SubsetStrap::new(dim, s.tree_cfg.seed).embed(g, &s.subset, s.ppr_cfg))
        }
        Method::GlobalStrap => timed(|| {
            GlobalStrap::new(dim, s.tree_cfg.seed).embed(
                g,
                &s.subset,
                s.ppr_cfg.alpha,
                s.ppr_cfg.r_max,
            )
        }),
        Method::DynPpe => timed(|| {
            // DynPPE tunes a finer r_max for accuracy (the paper notes its
            // higher static cost for this reason).
            let cfg = PprConfig {
                alpha: s.ppr_cfg.alpha,
                r_max: s.ppr_cfg.r_max * 0.5,
            };
            DynPpe::build(g, &s.subset, cfg, dim, s.tree_cfg.seed).embedding()
        }),
        Method::Frede => timed(|| {
            let m = proximity(g, &s.subset, s.ppr_cfg);
            Frede::new(dim).factorize(&m)
        }),
        Method::RandNe => {
            timed(|| RandNe::new(RandNeConfig::new(dim, s.tree_cfg.seed)).embed(g, &s.subset))
        }
        Method::FrPca => timed(|| {
            let m = proximity(g, &s.subset, s.ppr_cfg);
            FrPca::new(dim, s.tree_cfg.seed).factorize(&m)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::standard_setup;
    use tsvd_datasets::DatasetConfig;

    fn tiny_setup() -> ExpSetup {
        let mut cfg = DatasetConfig::youtube();
        cfg.num_nodes = 300;
        cfg.num_edges = 1200;
        cfg.tau = 2;
        standard_setup(&cfg)
    }

    #[test]
    fn every_method_runs_and_shapes_agree() {
        let s = tiny_setup();
        let g = s.dataset.stream.snapshot(2);
        for method in [
            Method::TreeSvdS,
            Method::Hsvd,
            Method::SubsetStrap,
            Method::GlobalStrap,
            Method::DynPpe,
            Method::Frede,
            Method::RandNe,
            Method::FrPca,
        ] {
            let (pair, secs) = run_static(method, &g, &s);
            assert_eq!(pair.left.rows(), s.subset.len(), "{}", method.name());
            assert_eq!(pair.left.cols(), s.tree_cfg.dim, "{}", method.name());
            assert!(pair.left.is_finite(), "{}", method.name());
            assert!(secs >= 0.0);
            if let Some(r) = &pair.right {
                assert_eq!(r.rows(), g.num_nodes(), "{}", method.name());
            }
        }
    }
}
