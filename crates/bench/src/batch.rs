//! Shared batch-update driver for Exp. 4, Exp. 5, Figure 13 and Figure 14.
//!
//! Starts from a middle snapshot, replays the remaining event stream in
//! fixed-size batches, and maintains each method's embedding after every
//! batch — dynamically where the method supports it, by re-running
//! otherwise. The dynamic-PPR / proximity-matrix maintenance cost is shared
//! by all matrix-factorisation methods and is charged to each of them, as
//! in the paper's update-time accounting.

use crate::harness::timed;
use crate::setup::ExpSetup;
use std::collections::HashSet;
use tsvd_baselines::{DynPpe, SubsetStrap};
use tsvd_core::{TreeSvd, TreeSvdPipeline, UpdatePolicy};
use tsvd_graph::{DynGraph, EdgeEvent, EventKind};
use tsvd_linalg::DenseMatrix;
use tsvd_ppr::PprConfig;

/// Methods the batch-update experiments track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMethod {
    /// Dynamic Tree-SVD (Algorithm 4, lazy policy from the setup config).
    TreeSvdDynamic,
    /// Static Tree-SVD re-run on the maintained proximity matrix.
    TreeSvdStatic,
    /// Subset-STRAP re-run on the maintained proximity matrix.
    SubsetStrap,
    /// DynPPE with incremental PPR + re-hashing.
    DynPpe,
}

impl BatchMethod {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            BatchMethod::TreeSvdDynamic => "Tree-SVD",
            BatchMethod::TreeSvdStatic => "Tree-SVD-S",
            BatchMethod::SubsetStrap => "Subset-STRAP",
            BatchMethod::DynPpe => "DynPPE",
        }
    }
}

/// Final state of one tracked method.
pub struct BatchOutcome {
    /// Which method.
    pub method: BatchMethod,
    /// Mean per-batch update time in seconds (PPR maintenance included).
    pub avg_secs: f64,
    /// Final left embedding.
    pub left: DenseMatrix,
    /// Final right embedding (None for DynPPE).
    pub right: Option<DenseMatrix>,
    /// Total first-level blocks re-factorised (dynamic Tree-SVD only).
    pub blocks_recomputed: usize,
}

/// Result of one batch-update run.
pub struct BatchRun {
    /// Per-method outcomes, in the order requested.
    pub outcomes: Vec<BatchOutcome>,
    /// Batches actually replayed.
    pub num_batches: usize,
    /// Events actually applied.
    pub events_applied: usize,
    /// The graph after all updates.
    pub final_graph: DynGraph,
}

/// Collect up to `limit` future events after snapshot `t_mid`, skipping any
/// insert whose edge is in `skip`.
pub fn future_events(
    s: &ExpSetup,
    t_mid: usize,
    limit: usize,
    skip: &HashSet<(u32, u32)>,
) -> Vec<EdgeEvent> {
    let stream = &s.dataset.stream;
    let mut out = Vec::with_capacity(limit.min(stream.num_events()));
    for t in (t_mid + 1)..=stream.num_snapshots() {
        for e in stream.batch(t) {
            if e.kind == EventKind::Insert && skip.contains(&(e.u, e.v)) {
                continue;
            }
            out.push(*e);
            if out.len() == limit {
                return out;
            }
        }
    }
    out
}

/// Replay `events` in `batch_size` chunks from snapshot `t_mid`, tracking
/// every method in `methods`. `policy_override` replaces the dynamic
/// update policy of the setup's tree config when given (Figure 13 and the
/// change-measure ablation).
pub fn run_batch_updates(
    s: &ExpSetup,
    t_mid: usize,
    events: &[EdgeEvent],
    batch_size: usize,
    methods: &[BatchMethod],
    policy_override: Option<UpdatePolicy>,
) -> BatchRun {
    assert!(batch_size > 0);
    let mut tree_cfg = s.tree_cfg;
    if let Some(p) = policy_override {
        tree_cfg.policy = p;
    }
    let mut g = s.dataset.stream.snapshot(t_mid);
    // DynPPE maintains its own PPR state over its own graph copy.
    let mut dynppe_g = g.clone();
    let mut dynppe = if methods.contains(&BatchMethod::DynPpe) {
        let cfg = PprConfig {
            alpha: s.ppr_cfg.alpha,
            r_max: s.ppr_cfg.r_max * 0.5,
        };
        Some(DynPpe::build(
            &g,
            &s.subset,
            cfg,
            tree_cfg.dim,
            tree_cfg.seed,
        ))
    } else {
        None
    };
    let mut pipe = TreeSvdPipeline::new(&g, &s.subset, s.ppr_cfg, tree_cfg);
    let strap = SubsetStrap::new(tree_cfg.dim, tree_cfg.seed);

    let mut secs: Vec<f64> = vec![0.0; methods.len()];
    let mut blocks_recomputed = 0usize;
    let mut last_static_emb = None;
    let mut last_strap_pair = None;
    let mut num_batches = 0usize;
    for batch in events.chunks(batch_size) {
        num_batches += 1;
        // Shared PPR/proximity maintenance, charged to every MF method.
        let ((), ppr_secs) = timed(|| pipe.apply_events(&mut g, batch));
        for (mi, &m) in methods.iter().enumerate() {
            match m {
                BatchMethod::TreeSvdDynamic => {
                    let (stats, t) = timed(|| pipe.refresh_embedding());
                    blocks_recomputed += stats.blocks_recomputed;
                    secs[mi] += ppr_secs + t;
                }
                BatchMethod::TreeSvdStatic => {
                    let (emb, t) = timed(|| TreeSvd::new(tree_cfg).embed(pipe.matrix()));
                    last_static_emb = Some(emb);
                    secs[mi] += ppr_secs + t;
                }
                BatchMethod::SubsetStrap => {
                    let (pair, t) = timed(|| strap.factorize(&pipe.proximity_csr()));
                    last_strap_pair = Some(pair);
                    secs[mi] += ppr_secs + t;
                }
                BatchMethod::DynPpe => {
                    let dp = dynppe.as_mut().expect("DynPPE initialised");
                    let (_, t) = timed(|| dp.update(&mut dynppe_g, batch));
                    secs[mi] += t;
                }
            }
        }
    }

    let csr = pipe.proximity_csr();
    let outcomes = methods
        .iter()
        .enumerate()
        .map(|(mi, &m)| {
            let (left, right) = match m {
                BatchMethod::TreeSvdDynamic => {
                    let e = pipe.embedding();
                    (e.left(), Some(e.right(&csr)))
                }
                BatchMethod::TreeSvdStatic => {
                    let e = last_static_emb
                        .as_ref()
                        .cloned()
                        .unwrap_or_else(|| pipe.embedding().clone());
                    (e.left(), Some(e.right(&csr)))
                }
                BatchMethod::SubsetStrap => {
                    let p = last_strap_pair
                        .as_ref()
                        .cloned()
                        .unwrap_or_else(|| strap.factorize(&csr));
                    (p.left, p.right)
                }
                BatchMethod::DynPpe => (dynppe.as_ref().unwrap().embedding().left, None),
            };
            BatchOutcome {
                method: m,
                avg_secs: secs[mi] / num_batches.max(1) as f64,
                left,
                right,
                blocks_recomputed: if m == BatchMethod::TreeSvdDynamic {
                    blocks_recomputed
                } else {
                    0
                },
            }
        })
        .collect();
    BatchRun {
        outcomes,
        num_batches,
        events_applied: events.len(),
        final_graph: g,
    }
}

/// Standard knobs: batch size (`TSVD_BATCH_SIZE`, default 500) and batch
/// count (`TSVD_BATCHES`, default 20) — the scaled analogue of the paper's
/// 100 × 10⁴-event protocol.
pub fn batch_params() -> (usize, usize) {
    let size = std::env::var("TSVD_BATCH_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let count = std::env::var("TSVD_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    (size, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::standard_setup;
    use tsvd_datasets::DatasetConfig;

    #[test]
    fn batch_driver_runs_all_methods() {
        let mut cfg = DatasetConfig::youtube();
        cfg.num_nodes = 400;
        cfg.num_edges = 2000;
        cfg.tau = 4;
        let s = standard_setup(&cfg);
        let events = future_events(&s, 2, 200, &HashSet::new());
        assert!(!events.is_empty());
        let methods = [
            BatchMethod::TreeSvdDynamic,
            BatchMethod::TreeSvdStatic,
            BatchMethod::SubsetStrap,
            BatchMethod::DynPpe,
        ];
        let run = run_batch_updates(&s, 2, &events, 50, &methods, None);
        assert_eq!(run.outcomes.len(), 4);
        assert!(run.num_batches >= 2);
        for o in &run.outcomes {
            assert_eq!(o.left.rows(), s.subset.len(), "{}", o.method.name());
            assert!(o.left.is_finite());
            assert!(o.avg_secs > 0.0);
            if o.method != BatchMethod::DynPpe {
                assert!(o.right.is_some());
            }
        }
    }

    #[test]
    fn future_events_respects_skip() {
        let mut cfg = DatasetConfig::youtube();
        cfg.num_nodes = 300;
        cfg.num_edges = 1200;
        cfg.tau = 3;
        let s = standard_setup(&cfg);
        let all = future_events(&s, 1, usize::MAX, &HashSet::new());
        let first_insert = all.iter().find(|e| e.kind == EventKind::Insert).unwrap();
        let mut skip = HashSet::new();
        skip.insert((first_insert.u, first_insert.v));
        let filtered = future_events(&s, 1, usize::MAX, &skip);
        assert!(filtered.len() < all.len());
        assert!(
            !filtered
                .iter()
                .any(|e| e.kind == EventKind::Insert
                    && (e.u, e.v) == (first_insert.u, first_insert.v))
        );
    }
}
