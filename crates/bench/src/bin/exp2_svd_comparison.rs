//! **Exp. 2: Figure 5 + Tables 5 and 6.**
//!
//! SVD-framework comparison: FRPCA (flat randomized SVD), HSVD (exact
//! first level), and Tree-SVD-S factorise the *same* proximity matrix; we
//! report pure factorisation time (Figure 5) plus downstream micro-F1
//! (Table 5) and LP precision (Table 6).

use tsvd_baselines::{EmbeddingPair, FrPca};
use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, timed, Table};
use tsvd_bench::methods::blocked_proximity;
use tsvd_bench::setup::standard_setup;
use tsvd_core::{Level1Method, TreeSvd, TreeSvdConfig};
use tsvd_datasets::{all_lp_datasets, all_nc_datasets};
use tsvd_eval::{LinkPredictionTask, NodeClassificationTask};

fn factorizations(
    m: &tsvd_core::BlockedProximityMatrix,
    cfg: &TreeSvdConfig,
) -> Vec<(&'static str, EmbeddingPair, f64)> {
    let csr = m.to_csr();
    let mut out = Vec::new();
    let (pair, secs) = timed(|| FrPca::new(cfg.dim, cfg.seed).factorize(&csr));
    out.push(("FRPCA", pair, secs));
    let hsvd_cfg = TreeSvdConfig {
        level1: Level1Method::Exact,
        ..*cfg
    };
    let (emb, secs) = timed(|| TreeSvd::new(hsvd_cfg).embed(m));
    out.push((
        "HSVD",
        EmbeddingPair {
            left: emb.left(),
            right: Some(emb.right(&csr)),
        },
        secs,
    ));
    let (emb, secs) = timed(|| TreeSvd::new(*cfg).embed(m));
    out.push((
        "Tree-SVD-S",
        EmbeddingPair {
            left: emb.left(),
            right: Some(emb.right(&csr)),
        },
        secs,
    ));
    out
}

fn main() {
    // Table 5 + NC half of Figure 5.
    let mut nc = Table::new(&["dataset", "method", "micro-F1@50%", "svd-time"]);
    for cfg in all_nc_datasets() {
        eprintln!("[exp2] NC dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
        let m = blocked_proximity(&g, &s.subset, s.ppr_cfg, s.tree_cfg.num_blocks);
        let task = NodeClassificationTask::new(&s.labels, 0.5, 123);
        for (name, pair, secs) in factorizations(&m, &s.tree_cfg) {
            let f1 = task.evaluate(&pair.left);
            nc.row(vec![
                cfg.name.clone(),
                name.into(),
                fmt_pct(f1.micro),
                fmt_secs(secs),
            ]);
        }
    }
    nc.print("Exp. 2 — SVD comparison, node classification (Table 5 / Figure 5)");

    // Table 6 + LP half of Figure 5.
    let mut lp = Table::new(&["dataset", "method", "precision", "svd-time"]);
    for cfg in all_lp_datasets() {
        eprintln!("[exp2] LP dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
        let task = LinkPredictionTask::from_graph(&g, &s.subset, 0.3, 321);
        let m = blocked_proximity(
            &task.train_graph,
            &s.subset,
            s.ppr_cfg,
            s.tree_cfg.num_blocks,
        );
        for (name, pair, secs) in factorizations(&m, &s.tree_cfg) {
            let prec = task.precision(&pair.left, pair.right.as_ref().unwrap());
            lp.row(vec![
                cfg.name.clone(),
                name.into(),
                fmt_pct(prec),
                fmt_secs(secs),
            ]);
        }
    }
    lp.print("Exp. 2 — SVD comparison, link prediction (Table 6 / Figure 5)");

    save_json(
        "exp2_svd_comparison",
        &tsvd_rt::json::Json::object([("nc", nc.to_json()), ("lp", lp.to_json())]),
    );
}
