//! **Figure 12: Subset-STRAP vs Tree-SVD-S as `r_max` varies.**
//!
//! `r_max` controls PPR accuracy (and proximity-matrix density). Larger
//! thresholds are faster but degrade both methods' downstream quality;
//! Tree-SVD-S stays consistently faster at equal quality.

use tsvd_baselines::SubsetStrap;
use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, timed, Table};
use tsvd_bench::methods::blocked_proximity;
use tsvd_bench::setup::standard_setup;
use tsvd_core::TreeSvd;
use tsvd_datasets::{all_nc_datasets, DatasetConfig};
use tsvd_eval::{LinkPredictionTask, NodeClassificationTask};
use tsvd_ppr::PprConfig;

const RMAXES: [f64; 4] = [5e-4, 1e-4, 5e-5, 1e-5];

fn main() {
    // Node classification on the labelled datasets.
    let mut nc = Table::new(&["dataset", "r_max", "method", "micro-F1@50%", "time"]);
    for cfg in all_nc_datasets() {
        eprintln!("[fig12] NC dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
        let task = NodeClassificationTask::new(&s.labels, 0.5, 123);
        for &r_max in &RMAXES {
            let ppr_cfg = PprConfig {
                alpha: s.ppr_cfg.alpha,
                r_max,
            };
            let (m, ppr_secs) =
                timed(|| blocked_proximity(&g, &s.subset, ppr_cfg, s.tree_cfg.num_blocks));
            let (emb, tree_secs) = timed(|| TreeSvd::new(s.tree_cfg).embed(&m));
            let f1 = task.evaluate(&emb.left());
            nc.row(vec![
                cfg.name.clone(),
                format!("{r_max:.0e}"),
                "Tree-SVD-S".into(),
                fmt_pct(f1.micro),
                fmt_secs(ppr_secs + tree_secs),
            ]);
            let csr = m.to_csr();
            let (pair, strap_secs) =
                timed(|| SubsetStrap::new(s.tree_cfg.dim, s.tree_cfg.seed).factorize(&csr));
            let f1 = task.evaluate(&pair.left);
            nc.row(vec![
                cfg.name.clone(),
                format!("{r_max:.0e}"),
                "Subset-STRAP".into(),
                fmt_pct(f1.micro),
                fmt_secs(ppr_secs + strap_secs),
            ]);
            eprintln!("[fig12]   r_max = {r_max:.0e} done");
        }
    }
    nc.print("Figure 12 — varying r_max, node classification");

    // Link prediction on the YouTube-like graph.
    let mut lp = Table::new(&["dataset", "r_max", "method", "precision", "time"]);
    let cfg = DatasetConfig::youtube();
    let s = standard_setup(&cfg);
    let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
    let task = LinkPredictionTask::from_graph(&g, &s.subset, 0.3, 321);
    for &r_max in &RMAXES {
        let ppr_cfg = PprConfig {
            alpha: s.ppr_cfg.alpha,
            r_max,
        };
        let (m, ppr_secs) = timed(|| {
            blocked_proximity(&task.train_graph, &s.subset, ppr_cfg, s.tree_cfg.num_blocks)
        });
        let csr = m.to_csr();
        let (emb, tree_secs) = timed(|| TreeSvd::new(s.tree_cfg).embed(&m));
        let prec = task.precision(&emb.left(), &emb.right(&csr));
        lp.row(vec![
            cfg.name.clone(),
            format!("{r_max:.0e}"),
            "Tree-SVD-S".into(),
            fmt_pct(prec),
            fmt_secs(ppr_secs + tree_secs),
        ]);
        let (pair, strap_secs) =
            timed(|| SubsetStrap::new(s.tree_cfg.dim, s.tree_cfg.seed).factorize(&csr));
        let prec = task.precision(&pair.left, pair.right.as_ref().unwrap());
        lp.row(vec![
            cfg.name.clone(),
            format!("{r_max:.0e}"),
            "Subset-STRAP".into(),
            fmt_pct(prec),
            fmt_secs(ppr_secs + strap_secs),
        ]);
        eprintln!("[fig12] LP r_max = {r_max:.0e} done");
    }
    lp.print("Figure 12 — varying r_max, link prediction");

    save_json(
        "fig12_vary_rmax",
        &tsvd_rt::json::Json::object([("nc", nc.to_json()), ("lp", lp.to_json())]),
    );
}
