//! **Ablation: which change measure should gate lazy updates?**
//!
//! The paper (Section 3.2) considers tracking the number of non-zeros or
//! the 1-norm of each sub-matrix — "heuristic, efficient, and effective"
//! but without a theoretical guarantee — before settling on the
//! Frobenius-norm rule of Lemma 3.4. This ablation runs the batch-update
//! protocol under: the Frobenius rule (several δ), the changed-cell-count
//! heuristic (several budgets), eager per-change recomputation, and full
//! rebuilds, reporting quality, work, and time for each.

use std::collections::HashSet;
use tsvd_bench::batch::{batch_params, future_events, run_batch_updates, BatchMethod};
use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, Table};
use tsvd_bench::setup::standard_setup;
use tsvd_core::UpdatePolicy;
use tsvd_datasets::DatasetConfig;
use tsvd_eval::NodeClassificationTask;

fn main() {
    let (batch_size, max_batches) = batch_params();
    let limit = batch_size * max_batches;
    let policies: Vec<(String, UpdatePolicy)> = vec![
        (
            "frobenius δ=0.45".into(),
            UpdatePolicy::Lazy { delta: 0.45 },
        ),
        (
            "frobenius δ=0.65".into(),
            UpdatePolicy::Lazy { delta: 0.65 },
        ),
        (
            "frobenius δ=0.85".into(),
            UpdatePolicy::Lazy { delta: 0.85 },
        ),
        (
            "nnz-count 10%".into(),
            UpdatePolicy::LazyNnz { threshold: 0.1 },
        ),
        (
            "nnz-count 50%".into(),
            UpdatePolicy::LazyNnz { threshold: 0.5 },
        ),
        ("eager (any change)".into(), UpdatePolicy::ChangedOnly),
        ("rebuild (all)".into(), UpdatePolicy::All),
    ];
    let mut table = Table::new(&[
        "dataset",
        "policy",
        "micro-F1@50%",
        "avg-update-time",
        "blocks-recomputed",
    ]);
    for cfg in [DatasetConfig::patent(), DatasetConfig::wikipedia()] {
        eprintln!("[abl-measure] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let t_mid = (s.dataset.stream.num_snapshots() / 2).max(1);
        let events = future_events(&s, t_mid, limit, &HashSet::new());
        if events.is_empty() {
            continue;
        }
        let task = NodeClassificationTask::new(&s.labels, 0.5, 123);
        for (name, policy) in &policies {
            let run = run_batch_updates(
                &s,
                t_mid,
                &events,
                batch_size,
                &[BatchMethod::TreeSvdDynamic],
                Some(*policy),
            );
            let o = &run.outcomes[0];
            let f1 = task.evaluate(&o.left);
            table.row(vec![
                cfg.name.clone(),
                name.clone(),
                fmt_pct(f1.micro),
                fmt_secs(o.avg_secs),
                o.blocks_recomputed.to_string(),
            ]);
            eprintln!("[abl-measure]   {name}: {} blocks", o.blocks_recomputed);
        }
    }
    table.print("Ablation — lazy-update change measures (Frobenius vs nnz-count vs eager)");
    save_json("abl_change_measure", &table.to_json());
}
