//! Run every experiment binary in sequence — the one-command full
//! reproduction. Each experiment prints its own tables and writes JSON to
//! `target/experiments/`; this driver just orchestrates and reports wall
//! time per experiment.
//!
//! ```sh
//! cargo run --release -p tsvd-bench --bin run_all
//! ```

use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "exp1_static_nc",
    "exp1_static_lp",
    "exp2_svd_comparison",
    "exp3_snapshots_nc",
    "exp3_snapshots_lp",
    "exp4_batch_updates",
    "exp5_scalability",
    "fig11_vary_b",
    "fig12_vary_rmax",
    "fig13_vary_delta",
    "fig14_update_size",
    "abl_change_measure",
    "abl_partition",
    "abl_level1",
    "exp6_subset_locality",
];

fn main() {
    // Resolve sibling binaries from our own location (all live in the same
    // target directory).
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("target dir").to_path_buf();
    let total = Instant::now();
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        let bin = dir.join(name);
        if !bin.exists() {
            eprintln!("!! {name}: binary not built (cargo build --release -p tsvd-bench)");
            failed.push(*name);
            continue;
        }
        eprintln!("\n================= {name} =================");
        let t = Instant::now();
        let status = Command::new(&bin).status();
        match status {
            Ok(s) if s.success() => {
                eprintln!("== {name} done in {:.1}s ==", t.elapsed().as_secs_f64());
            }
            Ok(s) => {
                eprintln!("!! {name} exited with {s}");
                failed.push(*name);
            }
            Err(e) => {
                eprintln!("!! {name} failed to launch: {e}");
                failed.push(*name);
            }
        }
    }
    eprintln!(
        "\nall experiments finished in {:.1} min ({} ok, {} failed{})",
        total.elapsed().as_secs_f64() / 60.0,
        EXPERIMENTS.len() - failed.len(),
        failed.len(),
        if failed.is_empty() {
            String::new()
        } else {
            format!(": {}", failed.join(", "))
        }
    );
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
