//! **Exp. 5: Table 8 + the Twitter panel of Figure 9.**
//!
//! Scalability check on the largest (Twitter-like) graph: per-snapshot LP
//! precision for the static methods, then the batch-update protocol of
//! Exp. 4 (temporal link prediction with withheld future edges) comparing
//! dynamic Tree-SVD against the re-run methods.

use std::collections::HashSet;
use tsvd_bench::batch::{batch_params, future_events, run_batch_updates, BatchMethod};
use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, Table};
use tsvd_bench::methods::{run_static, Method};
use tsvd_bench::setup::standard_setup;
use tsvd_datasets::DatasetConfig;
use tsvd_eval::LinkPredictionTask;
use tsvd_graph::EventKind;

fn main() {
    let cfg = DatasetConfig::twitter();
    eprintln!(
        "[exp5] twitter-like graph: {} nodes, {} edges, {} snapshots",
        cfg.num_nodes, cfg.num_edges, cfg.tau
    );
    let s = standard_setup(&cfg);

    // ---- Figure 9 (last panel): precision per snapshot ----
    let mut fig9 = Table::new(&["snapshot", "method", "precision", "embed-time"]);
    let methods = [Method::RandNe, Method::SubsetStrap, Method::TreeSvdS];
    for t in 1..=s.dataset.stream.num_snapshots() {
        let g = s.dataset.stream.snapshot(t);
        let task = LinkPredictionTask::from_graph(&g, &s.subset, 0.3, 321);
        if task.num_positives() == 0 {
            continue;
        }
        for m in methods {
            let (pair, secs) = run_static(m, &task.train_graph, &s);
            let prec = task.precision(&pair.left, pair.right.as_ref().unwrap());
            fig9.row(vec![
                t.to_string(),
                m.name().into(),
                fmt_pct(prec),
                fmt_secs(secs),
            ]);
        }
        eprintln!("[exp5] snapshot {t} done");
    }
    fig9.print("Exp. 5 — Twitter-like LP across snapshots (Figure 9, last panel)");

    // ---- Table 8: batch updates at scale ----
    let (batch_size, max_batches) = batch_params();
    let limit = batch_size * max_batches;
    let t_mid = (s.dataset.stream.num_snapshots() / 2).max(1);
    let all_future = future_events(&s, t_mid, limit, &HashSet::new());
    let subset_set: HashSet<u32> = s.subset.iter().copied().collect();
    let g_mid = s.dataset.stream.snapshot(t_mid);
    let mut skip = HashSet::new();
    let mut positives = Vec::new();
    for e in &all_future {
        if e.kind == EventKind::Insert
            && subset_set.contains(&e.u)
            && !g_mid.has_edge(e.u, e.v)
            && skip.insert((e.u, e.v))
        {
            positives.push((s.subset.binary_search(&e.u).unwrap(), e.v));
        }
    }
    let events = future_events(&s, t_mid, limit, &skip);
    let lp_methods = [
        BatchMethod::SubsetStrap,
        BatchMethod::TreeSvdDynamic,
        BatchMethod::TreeSvdStatic,
    ];
    let run = run_batch_updates(&s, t_mid, &events, batch_size, &lp_methods, None);
    use tsvd_rt::rng::{Rng, SeedableRng};
    let mut rng = tsvd_rt::rng::StdRng::seed_from_u64(808);
    let n = run.final_graph.num_nodes() as u32;
    let mut negatives = Vec::new();
    let mut seen = HashSet::new();
    while negatives.len() < positives.len() {
        let i = rng.gen_range(0..s.subset.len());
        let v = rng.gen_range(0..n);
        if s.subset[i] == v || run.final_graph.has_edge(s.subset[i], v) || !seen.insert((i, v)) {
            continue;
        }
        negatives.push((i, v));
    }
    let task = LinkPredictionTask::from_pairs(run.final_graph.clone(), positives, negatives);
    eprintln!(
        "[exp5] {} positives, {} events in {} batches",
        task.num_positives(),
        run.events_applied,
        run.num_batches
    );
    let mut table8 = Table::new(&["method", "precision", "avg-update-time"]);
    for o in &run.outcomes {
        let prec = task.precision(&o.left, o.right.as_ref().unwrap());
        table8.row(vec![
            o.method.name().into(),
            fmt_pct(prec),
            fmt_secs(o.avg_secs),
        ]);
    }
    table8.print("Exp. 5 — Twitter-like batch updates (Table 8)");

    save_json(
        "exp5_scalability",
        &tsvd_rt::json::Json::object([
            ("fig9_twitter", fig9.to_json()),
            ("table8", table8.to_json()),
        ]),
    );
}
