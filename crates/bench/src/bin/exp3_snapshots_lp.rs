//! **Exp. 3 (link prediction): Figure 9.**
//!
//! Precision per snapshot on YouTube-like and Flickr-like graphs (the
//! Twitter-like panel of Figure 9 lives in `exp5_scalability`). Per
//! snapshot: hold out 30% of subset edges, embed on the rest, rank.

use tsvd_bench::harness::{fmt_pct, save_json, Table};
use tsvd_bench::methods::{run_static, Method};
use tsvd_bench::setup::standard_setup;
use tsvd_datasets::DatasetConfig;
use tsvd_eval::LinkPredictionTask;

fn main() {
    let methods = [Method::RandNe, Method::SubsetStrap, Method::TreeSvdS];
    let mut table = Table::new(&["dataset", "snapshot", "method", "precision"]);
    for cfg in [DatasetConfig::youtube(), DatasetConfig::flickr()] {
        eprintln!("[exp3-lp] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let tau = s.dataset.stream.num_snapshots();
        for t in 1..=tau {
            let g = s.dataset.stream.snapshot(t);
            let task = LinkPredictionTask::from_graph(&g, &s.subset, 0.3, 321);
            if task.num_positives() == 0 {
                eprintln!("[exp3-lp]   snapshot {t}: no positives yet, skipped");
                continue;
            }
            for m in methods {
                let (pair, _) = run_static(m, &task.train_graph, &s);
                let prec = task.precision(&pair.left, pair.right.as_ref().unwrap());
                table.row(vec![
                    cfg.name.clone(),
                    t.to_string(),
                    m.name().into(),
                    fmt_pct(prec),
                ]);
            }
            eprintln!("[exp3-lp]   snapshot {t}/{tau} done");
        }
    }
    table.print("Exp. 3 — link prediction across snapshots (Figure 9)");
    save_json("exp3_snapshots_lp", &table.to_json());
}
