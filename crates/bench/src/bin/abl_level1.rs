//! **Ablation: level-1 factorisation method.**
//!
//! The paper fixes sparse *randomized* SVD at the first level. This
//! ablation swaps in the two alternatives on the same proximity matrices:
//! exact dense SVD (= HSVD) and deterministic Golub–Kahan–Lanczos, and
//! reports factorisation time, projection residual, and downstream quality.
//! The interesting question: does the randomized method's `(1+ε)` slack
//! ever cost downstream accuracy, and what does determinism cost in time?

use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, timed, Table};
use tsvd_bench::methods::blocked_proximity;
use tsvd_bench::setup::standard_setup;
use tsvd_core::{Level1Method, TreeSvd, TreeSvdConfig};
use tsvd_datasets::all_nc_datasets;
use tsvd_eval::NodeClassificationTask;

fn main() {
    let methods = [
        ("randomized (paper)", Level1Method::Randomized),
        ("lanczos", Level1Method::Lanczos),
        ("exact (HSVD)", Level1Method::Exact),
    ];
    let mut table = Table::new(&[
        "dataset",
        "level-1",
        "micro-F1@50%",
        "proj-residual/‖M‖",
        "svd-time",
    ]);
    for cfg in all_nc_datasets() {
        eprintln!("[abl-level1] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
        let m = blocked_proximity(&g, &s.subset, s.ppr_cfg, s.tree_cfg.num_blocks);
        let csr = m.to_csr();
        let norm = csr.frobenius_norm();
        let task = NodeClassificationTask::new(&s.labels, 0.5, 123);
        for (name, level1) in methods {
            let tree_cfg = TreeSvdConfig {
                level1,
                ..s.tree_cfg
            };
            let (emb, secs) = timed(|| TreeSvd::new(tree_cfg).embed(&m));
            let f1 = task.evaluate(&emb.left());
            let resid = emb.projection_residual(&csr) / norm.max(1e-12);
            table.row(vec![
                cfg.name.clone(),
                name.into(),
                fmt_pct(f1.micro),
                format!("{resid:.4}"),
                fmt_secs(secs),
            ]);
            eprintln!("[abl-level1]   {name}: {}", fmt_secs(secs));
        }
    }
    table.print("Ablation — level-1 factorisation: randomized vs Lanczos vs exact");
    save_json("abl_level1", &table.to_json());
}
