//! **Ablation: equal-width vs mass-balanced column partitioning.**
//!
//! The paper observes that PPR mass concentrates on a few local
//! sub-matrices ("with a large sub-matrix partition size b, the PPR entries
//! often concentrate on some local sub-matrices") — that skew is what lazy
//! updates exploit, but it also unbalances the level-1 SVD costs. This
//! ablation compares the paper's equal-width layout against boundaries
//! balanced by initial column mass: static build time, per-block nnz skew,
//! dynamic update work, and downstream quality.

use std::collections::HashSet;
use tsvd_bench::batch::{batch_params, future_events};
use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, timed, Table};
use tsvd_bench::setup::standard_setup;
use tsvd_core::{PartitionStrategy, TreeSvdConfig, TreeSvdPipeline};
use tsvd_datasets::DatasetConfig;
use tsvd_eval::NodeClassificationTask;

fn main() {
    let (batch_size, max_batches) = batch_params();
    let limit = batch_size * max_batches;
    let mut table = Table::new(&[
        "dataset",
        "partition",
        "nnz-skew(max/mean)",
        "build-time",
        "avg-update-time",
        "blocks-recomputed",
        "micro-F1@50%",
    ]);
    for cfg in [DatasetConfig::patent(), DatasetConfig::wikipedia()] {
        eprintln!("[abl-partition] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let t_mid = (s.dataset.stream.num_snapshots() / 2).max(1);
        let events = future_events(&s, t_mid, limit, &HashSet::new());
        let task = NodeClassificationTask::new(&s.labels, 0.5, 123);
        for strategy in [PartitionStrategy::EqualWidth, PartitionStrategy::EqualMass] {
            let tree_cfg = TreeSvdConfig {
                partition: strategy,
                ..s.tree_cfg
            };
            let mut g = s.dataset.stream.snapshot(t_mid);
            let (mut pipe, build_secs) =
                timed(|| TreeSvdPipeline::new(&g, &s.subset, s.ppr_cfg, tree_cfg));
            // Per-block nnz skew of the initial matrix.
            let m = pipe.matrix();
            let nnzs: Vec<usize> = (0..m.num_blocks()).map(|j| m.block_csr(j).nnz()).collect();
            let mean = nnzs.iter().sum::<usize>() as f64 / nnzs.len() as f64;
            let skew = nnzs.iter().copied().max().unwrap_or(0) as f64 / mean.max(1.0);
            // Batch updates.
            let mut update_secs = 0.0;
            let mut blocks = 0usize;
            let mut batches = 0usize;
            for batch in events.chunks(batch_size) {
                batches += 1;
                let ((), t1) = timed(|| pipe.apply_events(&mut g, batch));
                let (stats, t2) = timed(|| pipe.refresh_embedding());
                update_secs += t1 + t2;
                blocks += stats.blocks_recomputed;
            }
            let f1 = task.evaluate(&pipe.embedding().left());
            table.row(vec![
                cfg.name.clone(),
                format!("{strategy:?}"),
                format!("{skew:.2}"),
                fmt_secs(build_secs),
                fmt_secs(update_secs / batches.max(1) as f64),
                blocks.to_string(),
                fmt_pct(f1.micro),
            ]);
            eprintln!("[abl-partition]   {strategy:?}: skew {skew:.2}");
        }
    }
    table.print("Ablation — column partitioning: equal-width vs mass-balanced");
    save_json("abl_partition", &table.to_json());
}
