//! **Figure 14: dynamic Tree-SVD vs static rebuild as the update size
//! grows.**
//!
//! The cutover question: if `E` events arrive (in 500-event batches), is it
//! cheaper to *maintain* the embedding dynamically after every batch, or to
//! skip maintenance and run one static Tree-SVD-S build on the final graph?
//! Dynamic maintenance also yields an up-to-date embedding after every
//! batch, so it is "beneficial" as long as its cumulative cost stays below
//! the one-shot rebuild. The paper finds the crossover around 10% of the
//! graph's edges changing.

use std::collections::HashSet;
use tsvd_bench::batch::{batch_params, future_events, run_batch_updates, BatchMethod};
use tsvd_bench::harness::{fmt_secs, save_json, timed, Table};
use tsvd_bench::setup::standard_setup;
use tsvd_core::TreeSvdPipeline;
use tsvd_datasets::all_nc_datasets;

fn main() {
    let (batch_size, _) = batch_params();
    let multipliers = [1usize, 2, 4, 8, 16, 32];
    let mut table = Table::new(&[
        "dataset",
        "events",
        "pct-of-edges",
        "Tree-SVD cumulative",
        "one static rebuild",
        "dynamic-wins",
    ]);
    for cfg in all_nc_datasets() {
        eprintln!("[fig14] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let t_mid = (s.dataset.stream.num_snapshots() / 2).max(1);
        let g_edges = s.dataset.stream.snapshot(t_mid).num_edges().max(1);
        for &mult in &multipliers {
            let limit = batch_size * mult;
            let events = future_events(&s, t_mid, limit, &HashSet::new());
            if events.len() < limit {
                eprintln!("[fig14]   stream exhausted at {} events", events.len());
                break;
            }
            // Dynamic arm: maintain through every batch.
            let run = run_batch_updates(
                &s,
                t_mid,
                &events,
                batch_size,
                &[BatchMethod::TreeSvdDynamic],
                None,
            );
            let dyn_total = run.outcomes[0].avg_secs * run.num_batches as f64;
            // Static arm: one from-scratch pipeline build (fresh PPR +
            // Tree-SVD) on the final graph.
            let (_, static_total) =
                timed(|| TreeSvdPipeline::new(&run.final_graph, &s.subset, s.ppr_cfg, s.tree_cfg));
            table.row(vec![
                cfg.name.clone(),
                events.len().to_string(),
                format!("{:.1}%", 100.0 * events.len() as f64 / g_edges as f64),
                fmt_secs(dyn_total),
                fmt_secs(static_total),
                (dyn_total < static_total).to_string(),
            ]);
            eprintln!(
                "[fig14]   {} events: dynamic {:.2}s vs one rebuild {:.2}s",
                events.len(),
                dyn_total,
                static_total
            );
        }
    }
    table.print("Figure 14 — update-size cutover: cumulative dynamic vs one static rebuild");
    save_json("fig14_update_size", &table.to_json());
}
