//! **Exp. 1 (link prediction): Table 4 + Figure 4.**
//!
//! Precision@|positives| and embedding time on the three LP datasets.
//! 30% of subset-outgoing edges are held out per Section 6.1; embeddings
//! are computed on the remaining graph. DynPPE is omitted exactly as in
//! the paper (it has no right embedding: hashing the `n × |S|` reverse
//! matrix would cost `n/|S|` times the subset embedding).

use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, Table};
use tsvd_bench::methods::{run_static, Method};
use tsvd_bench::setup::standard_setup;
use tsvd_datasets::all_lp_datasets;
use tsvd_eval::LinkPredictionTask;

fn main() {
    let methods = [
        Method::GlobalStrap,
        Method::SubsetStrap,
        Method::Frede,
        Method::RandNe,
        Method::TreeSvdS,
    ];
    let mut table = Table::new(&["dataset", "method", "precision", "auc", "time"]);
    for cfg in all_lp_datasets() {
        eprintln!("[exp1-lp] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
        let task = LinkPredictionTask::from_graph(&g, &s.subset, 0.3, 321);
        eprintln!("[exp1-lp]   {} positive pairs", task.num_positives());
        for m in methods {
            let (pair, secs) = run_static(m, &task.train_graph, &s);
            let right = pair
                .right
                .as_ref()
                .expect("LP methods provide right embeddings");
            let prec = task.precision(&pair.left, right);
            let auc = task.auc(&pair.left, right);
            table.row(vec![
                cfg.name.clone(),
                m.name().into(),
                fmt_pct(prec),
                fmt_pct(auc),
                fmt_secs(secs),
            ]);
            eprintln!(
                "[exp1-lp]   {:<13} precision {:.2}  time {}",
                m.name(),
                prec * 100.0,
                fmt_secs(secs)
            );
        }
    }
    table.print("Exp. 1 — static subset embedding, link prediction (Table 4 / Figure 4)");
    save_json("exp1_static_lp", &table.to_json());
}
