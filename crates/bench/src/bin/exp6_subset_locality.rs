//! **Extension (the paper's future work): does a *coherent* subset embed
//! better than a random one?**
//!
//! The conclusion conjectures: "if we focus on a subset of users with
//! similar properties, e.g., in the same age group or same city, the
//! performance of subset embedding also tends to improve over global
//! counterparts." Our generator plants communities, so we can test it:
//! compare link-prediction precision and classification F1 for (a) a
//! uniformly random subset vs (b) a subset drawn from two communities,
//! under subset Tree-SVD and the budget-equalised global embedding.

use tsvd_baselines::GlobalStrap;
use tsvd_bench::harness::{fmt_pct, save_json, Table};
use tsvd_bench::setup::{standard_setup, subset_size};
use tsvd_core::TreeSvdPipeline;
use tsvd_datasets::DatasetConfig;
use tsvd_eval::{LinkPredictionTask, NodeClassificationTask};
use tsvd_rt::rng::SeedableRng;
use tsvd_rt::rng::SliceRandom;

fn community_subset(
    labels: &[usize],
    classes: &[usize],
    size: usize,
    seed: u64,
    eligible: &dyn Fn(u32) -> bool,
) -> Vec<u32> {
    let mut nodes: Vec<u32> = labels
        .iter()
        .enumerate()
        .filter(|(i, l)| classes.contains(l) && eligible(*i as u32))
        .map(|(i, _)| i as u32)
        .collect();
    let mut rng = tsvd_rt::rng::StdRng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);
    nodes.truncate(size);
    nodes.sort_unstable();
    nodes
}

fn main() {
    let mut table = Table::new(&[
        "dataset",
        "subset-type",
        "method",
        "LP-precision",
        "micro-F1@50%",
    ]);
    for cfg in [DatasetConfig::patent(), DatasetConfig::youtube()] {
        eprintln!("[exp6] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
        let g1 = s.dataset.stream.snapshot(1);
        let eligible = |u: u32| g1.out_degree(u) + g1.in_degree(u) > 0;
        let random_subset = s.subset.clone();
        let coherent_subset =
            community_subset(&s.dataset.labels, &[0, 1], subset_size(), 99, &eligible);
        for (kind, subset) in [("random", &random_subset), ("coherent", &coherent_subset)] {
            let labels = s.dataset.subset_labels(subset);
            let lp = LinkPredictionTask::from_graph(&g, subset, 0.3, 321);
            let nc = NodeClassificationTask::new(&labels, 0.5, 123);
            // Subset Tree-SVD.
            let pipe = TreeSvdPipeline::new(&lp.train_graph, subset, s.ppr_cfg, s.tree_cfg);
            let left = pipe.embedding().left();
            let right = pipe.embedding().right(&pipe.proximity_csr());
            let prec = lp.precision(&left, &right);
            // Classification uses the full-graph embedding (no holdout).
            let pipe_full = TreeSvdPipeline::new(&g, subset, s.ppr_cfg, s.tree_cfg);
            let f1 = nc.evaluate(&pipe_full.embedding().left());
            table.row(vec![
                cfg.name.clone(),
                kind.into(),
                "Tree-SVD-S".into(),
                fmt_pct(prec),
                fmt_pct(f1.micro),
            ]);
            // Budget-equalised global embedding.
            let global = GlobalStrap::new(s.tree_cfg.dim, s.tree_cfg.seed).embed(
                &lp.train_graph,
                subset,
                s.ppr_cfg.alpha,
                s.ppr_cfg.r_max,
            );
            let gprec = lp.precision(&global.left, global.right.as_ref().unwrap());
            let global_full = GlobalStrap::new(s.tree_cfg.dim, s.tree_cfg.seed).embed(
                &g,
                subset,
                s.ppr_cfg.alpha,
                s.ppr_cfg.r_max,
            );
            let gf1 = nc.evaluate(&global_full.left);
            table.row(vec![
                cfg.name.clone(),
                kind.into(),
                "Global-STRAP".into(),
                fmt_pct(gprec),
                fmt_pct(gf1.micro),
            ]);
            eprintln!("[exp6]   {kind}: subset prec {prec:.3} vs global {gprec:.3}");
        }
    }
    table.print("Exp. 6 (extension) — coherent vs random subsets (paper's future work)");
    save_json("exp6_subset_locality", &table.to_json());
}
