// Temporary profiling of Tree-SVD stage costs.
use tsvd_bench::harness::timed;
use tsvd_bench::methods::blocked_proximity;
use tsvd_bench::setup::standard_setup;
use tsvd_core::TreeSvd;
use tsvd_datasets::DatasetConfig;

fn main() {
    let cfg = DatasetConfig::patent();
    let s = standard_setup(&cfg);
    let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
    let (m, t) = timed(|| blocked_proximity(&g, &s.subset, s.ppr_cfg, s.tree_cfg.num_blocks));
    println!("proximity: {t:.3}s nnz={} rows={}", m.nnz(), m.num_rows());
    let (_emb, t) = timed(|| TreeSvd::new(s.tree_cfg).embed(&m));
    println!("tree embed total: {t:.3}s");
    // level-1 only
    let (l1, t) = timed(|| {
        (0..m.num_blocks())
            .map(|j| {
                let b = m.block_csr(j);
                tsvd_linalg::randomized::randomized_svd(
                    &b,
                    &tsvd_linalg::RandomizedSvdConfig {
                        rank: 64,
                        oversample: 8,
                        power_iters: 1,
                    },
                    &mut <tsvd_rt::rng::StdRng as tsvd_rt::rng::SeedableRng>::seed_from_u64(1),
                )
                .u_sigma()
            })
            .collect::<Vec<_>>()
    });
    println!("level-1 sequential: {t:.3}s");
    let (_, t) = timed(|| {
        let refs: Vec<&tsvd_linalg::DenseMatrix> = l1[..4].iter().collect();
        let c = tsvd_linalg::DenseMatrix::hconcat(&refs);
        tsvd_linalg::svd::exact_truncated_svd(&c, 64)
    });
    println!("one merge (4x -> {} cols): {t:.3}s", 4 * 72);
}
