//! **Exp. 4: Figure 10 + Table 7.**
//!
//! Batch-update comparison: starting from a middle snapshot, replay the
//! remaining event stream in fixed-size batches (scaled analogue of the
//! paper's 100 batches of 10⁴ events) and maintain each method's embedding
//! after every batch. Reports the mean per-batch update time and the
//! downstream quality after all updates: micro-F1 on the labelled datasets
//! (Figure 10) and temporal link-prediction precision on the LP datasets
//! (Table 7, with positives drawn from the future edges that were filtered
//! out of the replayed stream).

use std::collections::HashSet;
use tsvd_bench::batch::{batch_params, future_events, run_batch_updates, BatchMethod};
use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, Table};
use tsvd_bench::setup::{standard_setup, ExpSetup};
use tsvd_datasets::{all_lp_datasets, all_nc_datasets};
use tsvd_eval::{LinkPredictionTask, NodeClassificationTask};
use tsvd_graph::EventKind;

fn mid_snapshot(s: &ExpSetup) -> usize {
    (s.dataset.stream.num_snapshots() / 2).max(1)
}

fn main() {
    let (batch_size, max_batches) = batch_params();
    let limit = batch_size * max_batches;

    // ---- Figure 10: node classification after batch updates ----
    let nc_methods = [
        BatchMethod::DynPpe,
        BatchMethod::SubsetStrap,
        BatchMethod::TreeSvdStatic,
        BatchMethod::TreeSvdDynamic,
    ];
    let mut fig10 = Table::new(&[
        "dataset",
        "method",
        "avg-update-time",
        "micro-F1@50%",
        "blocks-recomputed",
    ]);
    for cfg in all_nc_datasets() {
        eprintln!("[exp4] NC dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let t_mid = mid_snapshot(&s);
        let events = future_events(&s, t_mid, limit, &HashSet::new());
        if events.is_empty() {
            eprintln!("[exp4]   no future events, skipped");
            continue;
        }
        let run = run_batch_updates(&s, t_mid, &events, batch_size, &nc_methods, None);
        eprintln!(
            "[exp4]   {} events in {} batches",
            run.events_applied, run.num_batches
        );
        let task = NodeClassificationTask::new(&s.labels, 0.5, 123);
        for o in &run.outcomes {
            let f1 = task.evaluate(&o.left);
            fig10.row(vec![
                cfg.name.clone(),
                o.method.name().into(),
                fmt_secs(o.avg_secs),
                fmt_pct(f1.micro),
                o.blocks_recomputed.to_string(),
            ]);
        }
    }
    fig10.print("Exp. 4 — batch updates, node classification (Figure 10)");

    // ---- Table 7: link prediction after batch updates ----
    let lp_methods = [
        BatchMethod::SubsetStrap,
        BatchMethod::TreeSvdDynamic,
        BatchMethod::TreeSvdStatic,
    ];
    let mut table7 = Table::new(&["dataset", "method", "precision", "avg-update-time"]);
    for cfg in all_lp_datasets() {
        eprintln!("[exp4] LP dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let t_mid = mid_snapshot(&s);
        // Positives: future subset-outgoing inserts, withheld from replay.
        let all_future = future_events(&s, t_mid, limit, &HashSet::new());
        let subset_set: HashSet<u32> = s.subset.iter().copied().collect();
        let g_mid = s.dataset.stream.snapshot(t_mid);
        let mut skip = HashSet::new();
        let mut positives = Vec::new();
        for e in &all_future {
            if e.kind == EventKind::Insert
                && subset_set.contains(&e.u)
                && !g_mid.has_edge(e.u, e.v)
                && skip.insert((e.u, e.v))
            {
                let row = s.subset.binary_search(&e.u).unwrap();
                positives.push((row, e.v));
            }
        }
        if positives.is_empty() {
            eprintln!("[exp4]   no future subset edges, skipped");
            continue;
        }
        let events = future_events(&s, t_mid, limit, &skip);
        let run = run_batch_updates(&s, t_mid, &events, batch_size, &lp_methods, None);
        // Negatives: non-edges of the final graph.
        use tsvd_rt::rng::{Rng, SeedableRng};
        let mut rng = tsvd_rt::rng::StdRng::seed_from_u64(555);
        let n = run.final_graph.num_nodes() as u32;
        let mut negatives = Vec::new();
        let mut seen = HashSet::new();
        while negatives.len() < positives.len() {
            let i = rng.gen_range(0..s.subset.len());
            let v = rng.gen_range(0..n);
            if s.subset[i] == v
                || run.final_graph.has_edge(s.subset[i], v)
                || skip.contains(&(s.subset[i], v))
                || !seen.insert((i, v))
            {
                continue;
            }
            negatives.push((i, v));
        }
        let task = LinkPredictionTask::from_pairs(run.final_graph.clone(), positives, negatives);
        eprintln!(
            "[exp4]   {} positives, {} events in {} batches",
            task.num_positives(),
            run.events_applied,
            run.num_batches
        );
        for o in &run.outcomes {
            let right = o.right.as_ref().expect("LP methods have right embeddings");
            let prec = task.precision(&o.left, right);
            table7.row(vec![
                cfg.name.clone(),
                o.method.name().into(),
                fmt_pct(prec),
                fmt_secs(o.avg_secs),
            ]);
        }
    }
    table7.print("Exp. 4 — batch updates, link prediction (Table 7)");

    save_json(
        "exp4_batch_updates",
        &tsvd_rt::json::Json::object([("fig10", fig10.to_json()), ("table7", table7.to_json())]),
    );
}
