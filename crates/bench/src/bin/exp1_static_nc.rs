//! **Exp. 1 (node classification): Table 1 + Figure 3.**
//!
//! Global vs subset embedding methods on the three labelled datasets:
//! micro-F1 at 50% and 70% training ratios plus embedding time, on the last
//! snapshot of each graph — the paper's motivation table (Table 1) is the
//! 50%-ratio column of this output.

use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, Table};
use tsvd_bench::methods::{run_static, Method};
use tsvd_bench::setup::standard_setup;
use tsvd_datasets::all_nc_datasets;
use tsvd_eval::NodeClassificationTask;

fn main() {
    let methods = [
        Method::GlobalStrap,
        Method::SubsetStrap,
        Method::DynPpe,
        Method::Frede,
        Method::RandNe,
        Method::TreeSvdS,
    ];
    let mut table = Table::new(&[
        "dataset",
        "method",
        "micro-F1@50%",
        "macro-F1@50%",
        "micro-F1@70%",
        "time",
    ]);
    for cfg in all_nc_datasets() {
        eprintln!("[exp1-nc] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
        let task50 = NodeClassificationTask::new(&s.labels, 0.5, 123);
        let task70 = NodeClassificationTask::new(&s.labels, 0.7, 123);
        for m in methods {
            let (pair, secs) = run_static(m, &g, &s);
            let f50 = task50.evaluate(&pair.left);
            let f70 = task70.evaluate(&pair.left);
            table.row(vec![
                cfg.name.clone(),
                m.name().into(),
                fmt_pct(f50.micro),
                fmt_pct(f50.macro_),
                fmt_pct(f70.micro),
                fmt_secs(secs),
            ]);
            eprintln!(
                "[exp1-nc]   {:<13} micro@50 {:.2}  time {}",
                m.name(),
                f50.micro * 100.0,
                fmt_secs(secs)
            );
        }
    }
    table.print("Exp. 1 — static subset embedding, node classification (Table 1 / Figure 3)");
    save_json("exp1_static_nc", &table.to_json());
}
