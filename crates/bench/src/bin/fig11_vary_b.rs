//! **Figure 11: HSVD vs Tree-SVD-S as the block count `b` varies.**
//!
//! The paper's parameter study: HSVD's exact first level makes its cost
//! climb with `b`, while Tree-SVD-S (randomized first level) is insensitive
//! to it, at equal downstream quality.

use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, timed, Table};
use tsvd_bench::methods::blocked_proximity;
use tsvd_bench::setup::standard_setup;
use tsvd_core::{Level1Method, TreeSvd, TreeSvdConfig};
use tsvd_datasets::all_nc_datasets;
use tsvd_eval::NodeClassificationTask;

fn main() {
    let bs = [4usize, 8, 16, 32, 64];
    let mut table = Table::new(&["dataset", "b", "method", "micro-F1@50%", "svd-time"]);
    for cfg in all_nc_datasets() {
        eprintln!("[fig11] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let g = s.dataset.stream.snapshot(s.dataset.stream.num_snapshots());
        let task = NodeClassificationTask::new(&s.labels, 0.5, 123);
        for &b in &bs {
            let m = blocked_proximity(&g, &s.subset, s.ppr_cfg, b);
            for (name, level1) in [
                ("HSVD", Level1Method::Exact),
                ("Tree-SVD-S", Level1Method::Randomized),
            ] {
                let tree_cfg = TreeSvdConfig {
                    num_blocks: b,
                    level1,
                    ..s.tree_cfg
                };
                let (emb, secs) = timed(|| TreeSvd::new(tree_cfg).embed(&m));
                let f1 = task.evaluate(&emb.left());
                table.row(vec![
                    cfg.name.clone(),
                    b.to_string(),
                    name.into(),
                    fmt_pct(f1.micro),
                    fmt_secs(secs),
                ]);
            }
            eprintln!("[fig11]   b = {b} done");
        }
    }
    table.print("Figure 11 — varying the number of first-level blocks b");
    save_json("fig11_vary_b", &table.to_json());
}
