//! **Exp. 3 (node classification): Figures 6–8.**
//!
//! Micro-F1 per snapshot at 50% and 70% training ratios on the three
//! labelled datasets. As in the paper, every method re-computes its
//! embedding from scratch at each snapshot (the snapshots are far apart, so
//! Tree-SVD equals Tree-SVD-S here); the point is that embedding quality
//! improves as the graph matures — updating embeddings matters.

use tsvd_bench::harness::{fmt_pct, save_json, Table};
use tsvd_bench::methods::{run_static, Method};
use tsvd_bench::setup::standard_setup;
use tsvd_datasets::all_nc_datasets;
use tsvd_eval::NodeClassificationTask;

fn main() {
    let methods = [
        Method::RandNe,
        Method::DynPpe,
        Method::SubsetStrap,
        Method::TreeSvdS,
    ];
    let mut table = Table::new(&[
        "dataset",
        "snapshot",
        "method",
        "micro-F1@50%",
        "micro-F1@70%",
    ]);
    for cfg in all_nc_datasets() {
        eprintln!("[exp3-nc] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let tau = s.dataset.stream.num_snapshots();
        let task50 = NodeClassificationTask::new(&s.labels, 0.5, 123);
        let task70 = NodeClassificationTask::new(&s.labels, 0.7, 123);
        for t in 1..=tau {
            let g = s.dataset.stream.snapshot(t);
            for m in methods {
                let (pair, _) = run_static(m, &g, &s);
                let f50 = task50.evaluate(&pair.left);
                let f70 = task70.evaluate(&pair.left);
                table.row(vec![
                    cfg.name.clone(),
                    t.to_string(),
                    m.name().into(),
                    fmt_pct(f50.micro),
                    fmt_pct(f70.micro),
                ]);
            }
            eprintln!("[exp3-nc]   snapshot {t}/{tau} done");
        }
    }
    table.print("Exp. 3 — node classification across snapshots (Figures 6–8)");
    save_json("exp3_snapshots_nc", &table.to_json());
}
