//! **Figure 13: dynamic Tree-SVD as the lazy threshold `δ` varies.**
//!
//! Smaller `δ` re-factorises more blocks per batch (slower, slightly better
//! quality); larger `δ` caches more aggressively. The paper settles on
//! `δ = 0.65` as the sweet spot.

use std::collections::HashSet;
use tsvd_bench::batch::{batch_params, future_events, run_batch_updates, BatchMethod};
use tsvd_bench::harness::{fmt_pct, fmt_secs, save_json, Table};
use tsvd_bench::setup::standard_setup;
use tsvd_datasets::all_nc_datasets;
use tsvd_eval::NodeClassificationTask;

const DELTAS: [f64; 5] = [0.2, 0.45, 0.65, 0.85, 1.2];

fn main() {
    let (batch_size, max_batches) = batch_params();
    let limit = batch_size * max_batches;
    let mut table = Table::new(&[
        "dataset",
        "delta",
        "micro-F1@50%",
        "avg-update-time",
        "blocks-recomputed",
    ]);
    for cfg in all_nc_datasets() {
        eprintln!("[fig13] dataset {} …", cfg.name);
        let s = standard_setup(&cfg);
        let t_mid = (s.dataset.stream.num_snapshots() / 2).max(1);
        let events = future_events(&s, t_mid, limit, &HashSet::new());
        if events.is_empty() {
            continue;
        }
        let task = NodeClassificationTask::new(&s.labels, 0.5, 123);
        for &delta in &DELTAS {
            let run = run_batch_updates(
                &s,
                t_mid,
                &events,
                batch_size,
                &[BatchMethod::TreeSvdDynamic],
                Some(tsvd_core::UpdatePolicy::Lazy { delta }),
            );
            let o = &run.outcomes[0];
            let f1 = task.evaluate(&o.left);
            table.row(vec![
                cfg.name.clone(),
                format!("{delta}"),
                fmt_pct(f1.micro),
                fmt_secs(o.avg_secs),
                o.blocks_recomputed.to_string(),
            ]);
            eprintln!(
                "[fig13]   δ = {delta} done ({} blocks)",
                o.blocks_recomputed
            );
        }
    }
    table.print("Figure 13 — varying the lazy-update threshold δ");
    save_json("fig13_vary_delta", &table.to_json());
}
