//! Timing, table printing, and result persistence.

use std::time::Instant;
use tsvd_rt::json::Json;

/// Wall-clock timer returning seconds.
pub struct Timer(Instant);

impl Timer {
    /// Start timing.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Timer::start();
    let out = f();
    (out, t.secs())
}

/// A simple markdown table accumulator.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Print with a title, padded for terminal readability.
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        println!("{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", fmt_row(&sep));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Rows as JSON (array of objects keyed by header).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    Json::object(
                        self.headers
                            .iter()
                            .zip(row)
                            .map(|(h, c)| (h.clone(), Json::Str(c.clone()))),
                    )
                })
                .collect(),
        )
    }
}

/// Persist an experiment record under `target/experiments/<name>.json`.
pub fn save_json(name: &str, value: &Json) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return; // persistence is best-effort; the printed tables are canon
    }
    let path = dir.join(format!("{name}.json"));
    let _ = std::fs::write(&path, value.to_string_pretty());
    eprintln!("[saved {}]", path.display());
}

/// Format seconds compactly (`ms` below one second).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Format a 0–1 score as a percentage with two decimals (paper style).
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips_json() {
        let mut t = Table::new(&["method", "score"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["b".into(), "2".into()]);
        let j = t.to_json();
        assert_eq!(j.as_array().unwrap().len(), 2);
        assert_eq!(j[0]["method"], "a");
        assert_eq!(j[1]["score"], "2");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_pct(0.7345), "73.45");
    }

    #[test]
    fn timer_measures_something() {
        let (out, secs) = timed(|| {
            let mut x = 0u64;
            for i in 0..100_000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(out > 0);
        assert!(secs >= 0.0);
    }
}
