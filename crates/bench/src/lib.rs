//! # tsvd-bench
//!
//! The experiment harness: shared setup/method-runner/table machinery used
//! by one binary per table and figure of the paper (see DESIGN.md §5 for
//! the full index). Run any experiment with
//! `cargo run --release -p tsvd-bench --bin <name>`; each prints
//! markdown tables shaped like the paper's and writes a JSON record under
//! `target/experiments/`.

pub mod batch;
pub mod harness;
pub mod methods;
pub mod setup;
