//! Standard experiment setup shared by every binary.

use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
use tsvd_datasets::{DatasetConfig, SyntheticDataset};
use tsvd_ppr::PprConfig;

/// Everything an experiment needs about one dataset.
pub struct ExpSetup {
    /// The generated dynamic graph + labels.
    pub dataset: SyntheticDataset,
    /// The sampled subset `S` (sorted node ids).
    pub subset: Vec<u32>,
    /// Labels of the subset, in row order.
    pub labels: Vec<usize>,
    /// PPR parameters for this dataset.
    pub ppr_cfg: PprConfig,
    /// Tree-SVD parameters for this dataset.
    pub tree_cfg: TreeSvdConfig,
}

/// Default subset size `|S|` (paper: 3000 on million-node graphs; scaled
/// proportionally here). Override with `TSVD_SUBSET`.
pub fn subset_size() -> usize {
    env_usize("TSVD_SUBSET", 300)
}

/// Default embedding dimension `d` (paper: 128; scaled with the graphs).
/// Override with `TSVD_DIM`.
pub fn embed_dim() -> usize {
    env_usize("TSVD_DIM", 64)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The per-dataset push threshold (the paper tunes `r_max` per dataset;
/// same idea at our scale — denser graphs tolerate a larger threshold).
pub fn r_max_for(name: &str) -> f64 {
    match name {
        "wikipedia" | "flickr" => 2e-4,
        "twitter" => 5e-4,
        _ => 1e-4,
    }
}

/// Build the standard setup for a dataset config: generate, sample `|S|`
/// subset nodes from snapshot 1, and derive the default Tree-SVD config
/// (`b = 16`, `k = 4`, so `q = 3` levels — the paper's shape with `b = 64`,
/// `k = 8` scaled down with everything else).
pub fn standard_setup(cfg: &DatasetConfig) -> ExpSetup {
    let dataset = SyntheticDataset::generate(cfg);
    let subset = dataset.sample_subset(subset_size(), 777);
    let labels = dataset.subset_labels(&subset);
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: r_max_for(&cfg.name),
    };
    let tree_cfg = TreeSvdConfig {
        dim: embed_dim(),
        branching: 4,
        num_blocks: 16,
        oversample: 8,
        power_iters: 1,
        level1: Level1Method::Randomized,
        policy: UpdatePolicy::Lazy { delta: 0.65 },
        partition: PartitionStrategy::EqualWidth,
        seed: 42,
    };
    ExpSetup {
        dataset,
        subset,
        labels,
        ppr_cfg,
        tree_cfg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_builds_for_smallest_dataset() {
        let mut cfg = DatasetConfig::youtube();
        cfg.num_nodes = 400;
        cfg.num_edges = 1600;
        let s = standard_setup(&cfg);
        // Snapshot 1 holds only the first event batch, so fewer than
        // subset_size() nodes may be eligible on a tiny config.
        assert!(!s.subset.is_empty());
        assert!(s.subset.len() <= subset_size());
        assert_eq!(s.labels.len(), s.subset.len());
        assert!(s.ppr_cfg.r_max > 0.0);
        s.tree_cfg.validate();
    }

    #[test]
    fn rmax_per_dataset() {
        assert!(r_max_for("wikipedia") > r_max_for("patent"));
        assert!(r_max_for("twitter") >= r_max_for("wikipedia"));
    }
}
