//! Property-based tests for the baseline embedders: shape contracts,
//! determinism, and method-specific invariants on arbitrary graphs.

use tsvd_baselines::{DynPpe, FrPca, Frede, RandNe, RandNeConfig, SubsetStrap};
use tsvd_graph::DynGraph;
use tsvd_linalg::CsrMatrix;
use tsvd_ppr::PprConfig;
use tsvd_rt::check::{Checker, Gen};
use tsvd_rt::{ensure, ensure_eq};

fn random_graph(g: &mut Gen) -> DynGraph {
    let n = g.usize_in(6..30);
    let m = g.usize_in(n..4 * n);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = g.u32_in(0..n as u32);
        let v = g.u32_in(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    DynGraph::from_edges(n, &edges)
}

fn sparse_matrix(g: &mut Gen) -> CsrMatrix {
    let m = g.usize_in(2..10);
    let n = g.usize_in(8..40);
    let rows: Vec<Vec<(u32, f64)>> = (0..m)
        .map(|_| loop {
            // Rows need at least one entry (the old strategy drew 1..).
            let row = g.sparse_row(n as u32, n.min(8), 0.1..3.0);
            if !row.is_empty() {
                break row;
            }
        })
        .collect();
    CsrMatrix::from_rows(n, &rows)
}

#[test]
fn dynppe_shapes_and_determinism() {
    Checker::new(24).run("dynppe_shapes_and_determinism", |gen| {
        let g = random_graph(gen);
        let dim = gen.usize_in(2..12);
        let sources: Vec<u32> = (0..3.min(g.num_nodes() as u32)).collect();
        let cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-3,
        };
        let a = DynPpe::build(&g, &sources, cfg, dim, 5);
        let b = DynPpe::build(&g, &sources, cfg, dim, 5);
        let ea = a.embedding();
        ensure_eq!(ea.left.rows(), sources.len());
        ensure_eq!(ea.left.cols(), dim);
        ensure!(ea.left.is_finite());
        ensure!(ea.left.sub(&b.embedding().left).max_abs() == 0.0);
        Ok(())
    });
}

#[test]
fn strap_reconstruction_beats_frede_or_ties() {
    Checker::new(24).run("strap_reconstruction_beats_frede_or_ties", |gen| {
        // STRAP's randomized SVD carries a (1+ε) Frobenius guarantee; FREDE
        // does not. On any input, STRAP's X·Yᵀ reconstruction must not be
        // substantially worse than FREDE's.
        let m = sparse_matrix(gen);
        let d = 3;
        let strap = SubsetStrap::new(d, 2).factorize(&m);
        let frede = Frede::new(d).factorize(&m);
        let dense = m.to_dense();
        let err = |pair: &tsvd_baselines::EmbeddingPair| {
            pair.left
                .mul(&pair.right.as_ref().unwrap().transpose())
                .sub(&dense)
                .frobenius_norm()
        };
        ensure!(err(&strap) <= err(&frede) * 1.05 + 1e-9);
        Ok(())
    });
}

#[test]
fn frpca_matches_strap_spectrum() {
    Checker::new(24).run("frpca_matches_strap_spectrum", |gen| {
        // Same kernel family, same guarantee: singular values agree closely.
        let m = sparse_matrix(gen);
        let d = 3;
        let a = FrPca::new(d, 7).svd(&m);
        let b = FrPca::new(d, 8).svd(&m); // different seed
        for (x, y) in a.s.iter().zip(&b.s) {
            ensure!((x - y).abs() < 0.05 * (1.0 + y), "{x} vs {y}");
        }
        Ok(())
    });
}

#[test]
fn randne_left_rows_are_right_rows() {
    Checker::new(24).run("randne_left_rows_are_right_rows", |gen| {
        let g = random_graph(gen);
        let sources: Vec<u32> = (0..4.min(g.num_nodes() as u32)).collect();
        let pair = RandNe::new(RandNeConfig::new(6, 3)).embed(&g, &sources);
        let right = pair.right.as_ref().unwrap();
        ensure_eq!(right.rows(), g.num_nodes());
        for (i, &s) in sources.iter().enumerate() {
            ensure_eq!(pair.left.row(i), right.row(s as usize));
        }
        Ok(())
    });
}
