//! Property-based tests for the baseline embedders: shape contracts,
//! determinism, and method-specific invariants on arbitrary graphs.

use proptest::prelude::*;
use tsvd_baselines::{DynPpe, FrPca, Frede, RandNe, RandNeConfig, SubsetStrap};
use tsvd_graph::DynGraph;
use tsvd_linalg::CsrMatrix;
use tsvd_ppr::PprConfig;

fn graph_strategy() -> impl Strategy<Value = DynGraph> {
    (6usize..30).prop_flat_map(|n| {
        proptest::collection::vec(
            (0..n as u32, 0..n as u32).prop_filter("no self-loop", |(u, v)| u != v),
            n..4 * n,
        )
        .prop_map(move |edges| DynGraph::from_edges(n, &edges))
    })
}

fn sparse_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..10, 8usize..40).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            proptest::collection::btree_map(0..n as u32, 0.1..3.0f64, 1..n.min(8))
                .prop_map(|r| r.into_iter().collect::<Vec<_>>()),
            m,
        )
        .prop_map(move |rows| CsrMatrix::from_rows(n, &rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dynppe_shapes_and_determinism(g in graph_strategy(), dim in 2usize..12) {
        let sources: Vec<u32> = (0..3.min(g.num_nodes() as u32)).collect();
        let cfg = PprConfig { alpha: 0.2, r_max: 1e-3 };
        let a = DynPpe::build(&g, &sources, cfg, dim, 5);
        let b = DynPpe::build(&g, &sources, cfg, dim, 5);
        let ea = a.embedding();
        prop_assert_eq!(ea.left.rows(), sources.len());
        prop_assert_eq!(ea.left.cols(), dim);
        prop_assert!(ea.left.is_finite());
        prop_assert!(ea.left.sub(&b.embedding().left).max_abs() == 0.0);
    }

    #[test]
    fn strap_reconstruction_beats_frede_or_ties(m in sparse_matrix()) {
        // STRAP's randomized SVD carries a (1+ε) Frobenius guarantee; FREDE
        // does not. On any input, STRAP's X·Yᵀ reconstruction must not be
        // substantially worse than FREDE's.
        let d = 3;
        let strap = SubsetStrap::new(d, 2).factorize(&m);
        let frede = Frede::new(d).factorize(&m);
        let dense = m.to_dense();
        let err = |pair: &tsvd_baselines::EmbeddingPair| {
            pair.left
                .mul(&pair.right.as_ref().unwrap().transpose())
                .sub(&dense)
                .frobenius_norm()
        };
        prop_assert!(err(&strap) <= err(&frede) * 1.05 + 1e-9);
    }

    #[test]
    fn frpca_matches_strap_spectrum(m in sparse_matrix()) {
        // Same kernel family, same guarantee: singular values agree closely.
        let d = 3;
        let a = FrPca::new(d, 7).svd(&m);
        let b = FrPca::new(d, 8).svd(&m); // different seed
        for (x, y) in a.s.iter().zip(&b.s) {
            prop_assert!((x - y).abs() < 0.05 * (1.0 + y), "{x} vs {y}");
        }
    }

    #[test]
    fn randne_left_rows_are_right_rows(g in graph_strategy()) {
        let sources: Vec<u32> = (0..4.min(g.num_nodes() as u32)).collect();
        let pair = RandNe::new(RandNeConfig::new(6, 3)).embed(&g, &sources);
        let right = pair.right.as_ref().unwrap();
        prop_assert_eq!(right.rows(), g.num_nodes());
        for (i, &s) in sources.iter().enumerate() {
            prop_assert_eq!(pair.left.row(i), right.row(s as usize));
        }
    }
}
