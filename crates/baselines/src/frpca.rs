//! FRPCA (Feng et al., ACML 2018): fast randomized PCA for sparse data.
//!
//! In this system FRPCA is the "flat" randomized SVD applied to the whole
//! proximity matrix in one shot — the SVD-framework baseline of Exp. 2 that
//! Tree-SVD is compared against (the other being HSVD, i.e. Tree-SVD with
//! an exact first level). STRAP's inner factorisation is the same kernel.

use crate::pair::EmbeddingPair;
use crate::strap::pad_cols;
use tsvd_linalg::randomized::randomized_svd;
use tsvd_linalg::{CsrMatrix, RandomizedSvdConfig, Svd};
use tsvd_rt::rng::SeedableRng;
use tsvd_rt::rng::StdRng;

/// The FRPCA factoriser.
#[derive(Debug, Clone, Copy)]
pub struct FrPca {
    /// Target rank `d`.
    pub dim: usize,
    /// Oversampling.
    pub oversample: usize,
    /// Power iterations — FRPCA's accuracy lever; its reference
    /// implementation defaults to a handful.
    pub power_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FrPca {
    /// Defaults: oversample 10, 4 power iterations.
    pub fn new(dim: usize, seed: u64) -> Self {
        FrPca {
            dim,
            oversample: 10,
            power_iters: 4,
            seed,
        }
    }

    /// The raw truncated SVD of `m`.
    pub fn svd(&self, m: &CsrMatrix) -> Svd {
        let cfg = RandomizedSvdConfig {
            rank: self.dim,
            oversample: self.oversample,
            power_iters: self.power_iters,
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        randomized_svd(m, &cfg, &mut rng)
    }

    /// STRAP-convention embeddings (`U√Σ`, `V√Σ`) from the factorisation.
    pub fn factorize(&self, m: &CsrMatrix) -> EmbeddingPair {
        let svd = self.svd(m);
        let left = pad_cols(svd.embedding(), self.dim);
        let mut right = svd.vt.transpose();
        let sq: Vec<f64> = svd.s.iter().map(|s| s.max(0.0).sqrt()).collect();
        right.scale_cols(&sq);
        EmbeddingPair {
            left,
            right: Some(pad_cols(right, self.dim)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_linalg::svd::exact_svd;
    use tsvd_rt::rng::Rng;

    #[test]
    fn near_optimal_factorization() {
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<(u32, f64)>> = (0..40)
            .map(|_| {
                let mut r = Vec::new();
                for c in 0..120u32 {
                    if rng.gen_bool(0.15) {
                        r.push((c, rng.gen_range(0.2..2.0)));
                    }
                }
                r
            })
            .collect();
        let m = CsrMatrix::from_rows(120, &rows);
        let d = 8;
        let pair = FrPca::new(d, 3).factorize(&m);
        let approx = pair.left.mul(&pair.right.unwrap().transpose());
        let err = approx.sub(&m.to_dense()).frobenius_norm();
        let svd = exact_svd(&m.to_dense());
        let opt: f64 = svd.s[d..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!(err <= 1.05 * opt + 1e-9, "err {err} vs {opt}");
    }

    #[test]
    fn svd_singular_values_close_to_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<(u32, f64)>> = (0..25)
            .map(|_| {
                let mut r = Vec::new();
                for c in 0..60u32 {
                    if rng.gen_bool(0.3) {
                        r.push((c, rng.gen_range(0.1..1.5)));
                    }
                }
                r
            })
            .collect();
        let m = CsrMatrix::from_rows(60, &rows);
        let got = FrPca::new(5, 7).svd(&m);
        let want = exact_svd(&m.to_dense());
        for j in 0..5 {
            assert!(
                (got.s[j] - want.s[j]).abs() < 0.02 * want.s[0],
                "σ_{j}: {} vs {}",
                got.s[j],
                want.s[j]
            );
        }
    }
}
