//! FREDE (Tsitsulin et al., VLDB 2021): anytime embeddings via
//! Frequent-Directions sketching of the proximity rows.
//!
//! FREDE streams the rows of the proximity matrix through a
//! Frequent-Directions sketch (read 2d rows, SVD-compress to d, repeat).
//! The sketch `B ≈ Σ_d·V_dᵀ` approximates the dominant right singular
//! space; embeddings are the projections `X = M_S·V_B·Σ_B^{-1/2}` (left)
//! and `Y = V_B·√Σ_B` (right). As the paper notes, FREDE carries no
//! Frobenius-norm guarantee (FD bounds covariance, not reconstruction) and
//! does not support dynamic updates — it is rebuilt per snapshot.

use crate::pair::EmbeddingPair;
use crate::strap::pad_cols;
use tsvd_linalg::sketch::FrequentDirections;
use tsvd_linalg::svd::exact_svd;
use tsvd_linalg::CsrMatrix;

/// The FREDE embedder.
#[derive(Debug, Clone, Copy)]
pub struct Frede {
    /// Embedding dimension `d` (also the sketch size `ℓ`).
    pub dim: usize,
}

impl Frede {
    /// Create a FREDE embedder of dimension `d`.
    pub fn new(dim: usize) -> Self {
        Frede { dim }
    }

    /// Sketch-and-project the proximity matrix.
    pub fn factorize(&self, m_s: &CsrMatrix) -> EmbeddingPair {
        let mut fd = FrequentDirections::new(self.dim, m_s.cols());
        for i in 0..m_s.rows() {
            let (cols, vals) = m_s.row(i);
            let pairs: Vec<(u32, f64)> = cols.iter().copied().zip(vals.iter().copied()).collect();
            fd.append_sparse(&pairs);
        }
        let sketch = fd.sketch(); // d × n
        let svd = exact_svd(&sketch);
        // Right singular space of the sketch.
        let v = svd.vt.transpose(); // n × r
        let inv_sqrt: Vec<f64> = svd
            .s
            .iter()
            .map(|&s| if s > 1e-12 { 1.0 / s.sqrt() } else { 0.0 })
            .collect();
        let sq: Vec<f64> = svd.s.iter().map(|s| s.max(0.0).sqrt()).collect();
        let mut proj = v.clone();
        proj.scale_cols(&inv_sqrt);
        let left = m_s.mul_dense(&proj); // |S| × r
        let mut right = v;
        right.scale_cols(&sq);
        EmbeddingPair {
            left: pad_cols(left, self.dim),
            right: Some(pad_cols(right, self.dim)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> CsrMatrix {
        let data: Vec<Vec<(u32, f64)>> = (0..rows)
            .map(|_| {
                let mut r = Vec::new();
                for c in 0..cols as u32 {
                    if rng.gen_bool(density) {
                        r.push((c, rng.gen_range(0.2..2.0)));
                    }
                }
                r
            })
            .collect();
        CsrMatrix::from_rows(cols, &data)
    }

    #[test]
    fn shapes_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_csr(&mut rng, 30, 100, 0.1);
        let pair = Frede::new(8).factorize(&m);
        assert_eq!(pair.left.rows(), 30);
        assert_eq!(pair.left.cols(), 8);
        assert_eq!(pair.right.as_ref().unwrap().rows(), 100);
        assert!(pair.left.is_finite());
    }

    #[test]
    fn low_rank_input_recovered_well() {
        // If M is exactly rank ≤ d, FD sketching is lossless in covariance,
        // so X·Yᵀ should reconstruct M accurately.
        let mut rng = StdRng::seed_from_u64(2);
        let a = tsvd_linalg::rng::gaussian_matrix(&mut rng, 20, 3);
        let b = tsvd_linalg::rng::gaussian_matrix(&mut rng, 3, 50);
        let dense = a.mul(&b);
        let rows: Vec<Vec<(u32, f64)>> = (0..20)
            .map(|i| (0..50).map(|j| (j as u32, dense.get(i, j))).collect())
            .collect();
        let m = CsrMatrix::from_rows(50, &rows);
        let pair = Frede::new(6).factorize(&m);
        let approx = pair.left.mul(&pair.right.unwrap().transpose());
        let rel = approx.sub(&dense).frobenius_norm() / dense.frobenius_norm();
        assert!(rel < 1e-6, "relative error {rel}");
    }

    #[test]
    fn full_rank_input_is_lossy() {
        // The documented weakness: a slowly-decaying spectrum sketched into
        // d directions loses reconstruction quality vs the exact rank-d SVD.
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_csr(&mut rng, 60, 80, 0.4);
        let d = 4;
        let pair = Frede::new(d).factorize(&m);
        let approx = pair.left.mul(&pair.right.unwrap().transpose());
        let frede_err = approx.sub(&m.to_dense()).frobenius_norm();
        let svd = exact_svd(&m.to_dense());
        let opt: f64 = svd.s[d..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!(frede_err >= opt - 1e-9, "cannot beat the optimum");
    }
}
