//! Common output format of every embedding method.

use tsvd_linalg::DenseMatrix;

/// A `(left, right)` embedding pair.
///
/// `left` has one row per subset node (the classification features and the
/// link-prediction source side); `right`, when a method can produce it, has
/// one row per graph node (the link-prediction target side). Methods whose
/// left and right spaces coincide (RandNE, DynPPE) set `right` to the full
/// node embedding in the same space.
#[derive(Debug, Clone)]
pub struct EmbeddingPair {
    /// `|S| × d` subset embedding.
    pub left: DenseMatrix,
    /// `n × d` node embedding for edge scoring, if the method provides one.
    pub right: Option<DenseMatrix>,
}

impl EmbeddingPair {
    /// Left-only pair (methods that cannot score arbitrary targets, like
    /// DynPPE in the paper's LP discussion).
    pub fn left_only(left: DenseMatrix) -> Self {
        EmbeddingPair { left, right: None }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.left.cols()
    }
}
