//! # tsvd-baselines
//!
//! Every competitor the paper evaluates against, implemented on the same
//! substrates (graph, PPR, linear algebra) as Tree-SVD itself:
//!
//! * [`DynPpe`] — the state-of-the-art dynamic subset embedder (Guo et al.
//!   2021): per-source PPR vectors hashed into `d` dimensions with a signed
//!   feature hash, incrementally re-hashed when PPR changes;
//! * [`SubsetStrap`] / [`GlobalStrap`] — STRAP (Yin & Wei 2019) restricted
//!   to the subset proximity matrix / run over all nodes with an equalised
//!   memory budget (the paper's Table 1 motivation);
//! * [`Frede`] — FREDE (Tsitsulin et al. 2021): Frequent-Directions
//!   sketching of the proximity rows;
//! * [`RandNe`] — RandNE (Zhang et al. 2018): iterative Gaussian projection
//!   of high-order transition matrices;
//! * [`FrPca`] — fast randomized PCA (Feng et al. 2018), the SVD-framework
//!   baseline of Exp. 2 (HSVD, the other Exp. 2 baseline, is
//!   `tsvd_core::Level1Method::Exact`);
//! * [`EmbeddingPair`] — the common `(left, right)` output every method
//!   hands to the evaluation layer.

mod dynppe;
mod frede;
mod frpca;
mod pair;
mod randne;
mod strap;

pub use dynppe::DynPpe;
pub use frede::Frede;
pub use frpca::FrPca;
pub use pair::EmbeddingPair;
pub use randne::{RandNe, RandNeConfig};
pub use strap::{proximity_csr, GlobalStrap, SubsetStrap};
