//! RandNE (Zhang et al., ICDM 2018): billion-scale embedding by iterative
//! Gaussian random projection.
//!
//! RandNE projects a weighted sum of high-order transition matrices
//! `Σ_i a_i·Pⁱ` through an orthogonalised Gaussian matrix `R` without ever
//! materialising `Pⁱ`: `U_0 = R`, `U_i = P·U_{i−1}`,
//! `X = Σ_i a_i·U_i`. Fast, but projection (no spectral truncation) costs
//! accuracy — the paper's Exp. 1 shows it trailing the MF methods.

use crate::pair::EmbeddingPair;
use tsvd_graph::{Direction, DynGraph};
use tsvd_linalg::qr::orthonormalize;
use tsvd_linalg::rng::gaussian_matrix;
use tsvd_linalg::{CsrMatrix, DenseMatrix};
use tsvd_rt::rng::SeedableRng;
use tsvd_rt::rng::StdRng;

/// RandNE parameters.
#[derive(Debug, Clone)]
pub struct RandNeConfig {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Order weights `a_0..a_q`; length determines the order `q`.
    /// Defaults follow the reference implementation's emphasis on higher
    /// orders.
    pub weights: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl RandNeConfig {
    /// Default: order 3 with the reference implementation's weights.
    pub fn new(dim: usize, seed: u64) -> Self {
        RandNeConfig {
            dim,
            weights: vec![1.0, 1e2, 1e4, 1e5],
            seed,
        }
    }
}

/// The RandNE embedder.
#[derive(Debug, Clone)]
pub struct RandNe {
    cfg: RandNeConfig,
}

impl RandNe {
    /// Create from a config.
    pub fn new(cfg: RandNeConfig) -> Self {
        assert!(!cfg.weights.is_empty(), "need at least one order weight");
        RandNe { cfg }
    }

    /// Embed all nodes of `g`; `sources` selects the subset rows for the
    /// left side. The right side is the full node embedding (RandNE embeds
    /// every node in one shared space).
    pub fn embed(&self, g: &DynGraph, sources: &[u32]) -> EmbeddingPair {
        let n = g.num_nodes();
        let p = transition_matrix(g);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let r = orthonormalize(&gaussian_matrix(&mut rng, n, self.cfg.dim.min(n)));
        let mut u = r.clone();
        let mut x = scale(&u, self.cfg.weights[0]);
        for &a in &self.cfg.weights[1..] {
            u = p.mul_dense(&u);
            add_scaled(&mut x, &u, a);
        }
        let mut left = DenseMatrix::zeros(sources.len(), x.cols());
        for (i, &s) in sources.iter().enumerate() {
            left.row_mut(i).copy_from_slice(x.row(s as usize));
        }
        EmbeddingPair {
            left,
            right: Some(x),
        }
    }
}

/// Row-stochastic transition matrix `P = D⁻¹·A` (dangling rows stay zero).
fn transition_matrix(g: &DynGraph) -> CsrMatrix {
    let n = g.num_nodes();
    let rows: Vec<Vec<(u32, f64)>> = (0..n)
        .map(|u| {
            let nbrs = g.neighbors(u as u32, Direction::Out);
            if nbrs.is_empty() {
                return Vec::new();
            }
            let w = 1.0 / nbrs.len() as f64;
            nbrs.iter().map(|&v| (v, w)).collect()
        })
        .collect();
    CsrMatrix::from_rows(n, &rows)
}

fn scale(m: &DenseMatrix, a: f64) -> DenseMatrix {
    let mut out = m.clone();
    for v in out.as_mut_slice() {
        *v *= a;
    }
    out
}

fn add_scaled(acc: &mut DenseMatrix, m: &DenseMatrix, a: f64) {
    for (o, &v) in acc.as_mut_slice().iter_mut().zip(m.as_slice()) {
        *o += a * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn transition_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_graph(&mut rng, 20, 60);
        let p = transition_matrix(&g);
        for u in 0..20 {
            let (_, vals) = p.row(u);
            let sum: f64 = vals.iter().sum();
            if g.out_degree(u as u32) > 0 {
                assert!((sum - 1.0).abs() < 1e-12, "row {u} sums to {sum}");
            } else {
                assert_eq!(sum, 0.0);
            }
        }
    }

    #[test]
    fn shapes_and_subset_extraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_graph(&mut rng, 50, 200);
        let pair = RandNe::new(RandNeConfig::new(8, 3)).embed(&g, &[5, 10, 15]);
        assert_eq!(pair.left.rows(), 3);
        assert_eq!(pair.left.cols(), 8);
        let right = pair.right.unwrap();
        assert_eq!(right.rows(), 50);
        // Left rows are exactly the corresponding right rows.
        assert_eq!(pair.left.row(0), right.row(5));
        assert_eq!(pair.left.row(2), right.row(15));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_graph(&mut rng, 30, 90);
        let a = RandNe::new(RandNeConfig::new(4, 7)).embed(&g, &[0]);
        let b = RandNe::new(RandNeConfig::new(4, 7)).embed(&g, &[0]);
        assert!(a.left.sub(&b.left).max_abs() == 0.0);
    }

    #[test]
    fn higher_orders_mix_neighborhoods() {
        // A path graph: with only a_0 (identity), embeddings of distinct
        // nodes are orthogonal; adding one order makes neighbors correlate.
        let mut g = DynGraph::with_nodes(10);
        for u in 0..9u32 {
            g.insert_edge(u, u + 1);
        }
        let flat = RandNe::new(RandNeConfig {
            dim: 8,
            weights: vec![1.0],
            seed: 1,
        })
        .embed(&g, &[0, 1]);
        let mixed = RandNe::new(RandNeConfig {
            dim: 8,
            weights: vec![1.0, 1.0],
            seed: 1,
        })
        .embed(&g, &[0, 1]);
        let dot = |m: &DenseMatrix| {
            m.row(0)
                .iter()
                .zip(m.row(1))
                .map(|(a, b)| a * b)
                .sum::<f64>()
                .abs()
        };
        assert!(dot(&mixed.left) > dot(&flat.left) + 1e-9);
    }
}
