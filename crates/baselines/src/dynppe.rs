//! DynPPE (Guo et al., KDD 2021): hashing-based dynamic subset embedding.
//!
//! For each source `s ∈ S`, DynPPE keeps an approximate PPR vector via
//! Forward-Push and maps it to `d` dimensions with a signed feature hash
//! `h: Rⁿ → R^d`:  `e_s[idx(v)] += sign(v)·π̂_s(v)`. On graph updates the
//! PPR vectors refresh incrementally (Algorithm 2) and only the rows of
//! sources whose vectors changed are re-hashed — which is what makes DynPPE
//! fast, and the hashing is what makes it less accurate than MF methods
//! (Table 1 / Exp. 4 of the paper).

use crate::pair::EmbeddingPair;
use tsvd_graph::{Direction, DynGraph, EdgeEvent};
use tsvd_linalg::DenseMatrix;
use tsvd_ppr::dynamic::{dynamic_update, record_events};
use tsvd_ppr::{forward_push, PprConfig, PprState};
use tsvd_rt::pool::{par_for_each_mut, par_map};

/// Deterministic 32-bit mix (xorshift-multiply finaliser, splitmix-style).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The DynPPE embedder.
#[derive(Debug, Clone)]
pub struct DynPpe {
    dim: usize,
    hash_seed: u64,
    cfg: PprConfig,
    sources: Vec<u32>,
    states: Vec<PprState>,
    emb: DenseMatrix,
}

impl DynPpe {
    /// Build on graph `g`: one forward push per source, then hash.
    pub fn build(
        g: &DynGraph,
        sources: &[u32],
        cfg: PprConfig,
        dim: usize,
        hash_seed: u64,
    ) -> Self {
        let states: Vec<PprState> = par_map(sources.len(), |i| {
            let mut st = PprState::new(sources[i]);
            forward_push(g, Direction::Out, cfg.alpha, cfg.r_max, &mut st);
            st
        });
        let mut me = DynPpe {
            dim,
            hash_seed,
            cfg,
            sources: sources.to_vec(),
            states,
            emb: DenseMatrix::zeros(sources.len(), dim),
        };
        for i in 0..me.sources.len() {
            me.rehash_row(i);
            me.states[i].clear_dirty();
        }
        me
    }

    /// Bucket index for node `v`.
    #[inline]
    fn bucket(&self, v: u32) -> usize {
        (mix(v as u64 ^ self.hash_seed) % self.dim as u64) as usize
    }

    /// ±1 sign for node `v` (independent hash).
    #[inline]
    fn sign(&self, v: u32) -> f64 {
        if mix(v as u64 ^ self.hash_seed.rotate_left(17)) & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Re-hash one source's embedding row from its current PPR estimate.
    ///
    /// Values are log-scaled exactly like the MF methods' proximity entries
    /// (`ln(p/r_max)` for `p > r_max`) before hashing: raw PPR magnitudes
    /// span many orders and would let a couple of hub entries drown the
    /// rest of the hashed signature.
    fn rehash_row(&mut self, i: usize) {
        let mut row = vec![0.0; self.dim];
        // Sort for a deterministic summation order (the estimate map is a
        // hash map whose iteration order varies between processes).
        let mut entries: Vec<(u32, f64)> = self.states[i].estimates().collect();
        entries.sort_unstable_by_key(|e| e.0);
        let r_max = self.cfg.r_max;
        for (v, p) in entries {
            let scaled = p / r_max;
            if scaled > 1.0 {
                row[self.bucket(v)] += self.sign(v) * scaled.ln();
            }
        }
        self.emb.row_mut(i).copy_from_slice(&row);
    }

    /// Apply an event batch: incremental PPR refresh (Algorithm 2), then
    /// re-hash only the rows whose PPR actually changed. Mutates `g`.
    /// Returns the number of re-hashed rows.
    pub fn update(&mut self, g: &mut DynGraph, events: &[EdgeEvent]) -> usize {
        let (recorded, _) = record_events(g, events);
        if recorded.is_empty() {
            return 0;
        }
        let cfg = self.cfg;
        let g_ref: &DynGraph = g;
        par_for_each_mut(&mut self.states, |st| {
            dynamic_update(g_ref, Direction::Out, cfg.alpha, cfg.r_max, st, &recorded);
        });
        let mut rehashed = 0;
        for i in 0..self.sources.len() {
            if self.states[i].clear_dirty() {
                self.rehash_row(i);
                rehashed += 1;
            }
        }
        rehashed
    }

    /// The current `|S| × d` embedding.
    pub fn embedding(&self) -> EmbeddingPair {
        EmbeddingPair::left_only(self.emb.clone())
    }

    /// The subset in row order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn build_produces_nonzero_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_graph(&mut rng, 60, 240);
        let d = DynPpe::build(&g, &[0, 1, 2], PprConfig::default(), 16, 7);
        let e = d.embedding();
        assert_eq!(e.left.rows(), 3);
        assert_eq!(e.dim(), 16);
        for i in 0..3 {
            let norm: f64 = e.left.row(i).iter().map(|v| v * v).sum();
            assert!(norm > 0.0, "row {i} empty");
        }
    }

    #[test]
    fn hash_preserves_l2_norm_approximately() {
        // Signed feature hashing is an ε-isometry in expectation:
        // ‖h(x)‖² has expectation ‖x‖². Check within a loose factor.
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_graph(&mut rng, 200, 1000);
        let cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-5,
        };
        let d = DynPpe::build(&g, &[0], cfg, 64, 3);
        let hashed_sq: f64 = d.emb.row(0).iter().map(|v| v * v).sum();
        let true_sq: f64 = d.states[0]
            .estimates()
            .map(|(_, p)| {
                let sc = p / cfg.r_max;
                if sc > 1.0 {
                    sc.ln().powi(2)
                } else {
                    0.0
                }
            })
            .sum();
        assert!(
            hashed_sq > 0.3 * true_sq && hashed_sq < 3.0 * true_sq,
            "{hashed_sq} vs {true_sq}"
        );
    }

    #[test]
    fn update_only_rehashes_affected_sources() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two disconnected cliques; sources in both.
        let mut g = DynGraph::with_nodes(40);
        for u in 0..20u32 {
            for v in 0..20u32 {
                if u != v && rng.gen_bool(0.3) {
                    g.insert_edge(u, v);
                }
            }
        }
        for u in 20..40u32 {
            for v in 20..40u32 {
                if u != v && rng.gen_bool(0.3) {
                    g.insert_edge(u, v);
                }
            }
        }
        let mut d = DynPpe::build(
            &g,
            &[0, 25],
            PprConfig {
                alpha: 0.2,
                r_max: 1e-4,
            },
            8,
            1,
        );
        // Event entirely inside the second clique: source 0 must be quiet.
        let rehashed = d.update(&mut g, &[EdgeEvent::insert(21, 39)]);
        assert!(rehashed <= 1, "only the affected source re-hashes");
    }

    #[test]
    fn update_matches_fresh_build_hash() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = random_graph(&mut rng, 50, 150);
        let cfg = PprConfig {
            alpha: 0.2,
            r_max: 1e-5,
        };
        let mut d = DynPpe::build(&g, &[3, 7], cfg, 32, 9);
        let events: Vec<EdgeEvent> = (0..10)
            .map(|i| EdgeEvent::insert(i as u32, (i + 11) as u32))
            .collect();
        d.update(&mut g, &events);
        let fresh = DynPpe::build(&g, &[3, 7], cfg, 32, 9);
        // Hashes of nearly identical PPR vectors are nearly identical.
        let diff = d.emb.sub(&fresh.emb).frobenius_norm();
        let scale = fresh.emb.frobenius_norm().max(1e-12);
        assert!(diff / scale < 0.05, "relative diff {}", diff / scale);
    }

    #[test]
    fn deterministic_hash() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_graph(&mut rng, 30, 90);
        let a = DynPpe::build(&g, &[0], PprConfig::default(), 8, 42);
        let b = DynPpe::build(&g, &[0], PprConfig::default(), 8, 42);
        assert!(a.emb.sub(&b.emb).max_abs() == 0.0);
        let c = DynPpe::build(&g, &[0], PprConfig::default(), 8, 43);
        assert!(
            a.emb.sub(&c.emb).max_abs() > 0.0,
            "different seed, different hash"
        );
    }
}
