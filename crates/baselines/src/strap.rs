//! STRAP (Yin & Wei, KDD 2019) in subset and global form.
//!
//! STRAP factorises the log-scaled two-directional PPR proximity matrix with
//! a fast randomized SVD and embeds `X = U·√Σ`. **Subset-STRAP** restricts
//! the matrix to the subset's rows — the paper's strongest quality baseline,
//! re-run from scratch at every snapshot. **Global-STRAP** embeds *all*
//! nodes under an equalised budget: with the same total memory, each of the
//! `n` sources gets an `r_max` coarser by a factor `n/|S|`, which is exactly
//! why Table 1 shows global embeddings losing badly to subset embeddings.

use crate::pair::EmbeddingPair;
use tsvd_graph::DynGraph;
use tsvd_linalg::randomized::randomized_svd;
use tsvd_linalg::{CsrMatrix, RandomizedSvdConfig};
use tsvd_ppr::{PprConfig, SubsetPpr};
use tsvd_rt::rng::SeedableRng;
use tsvd_rt::rng::StdRng;

/// Subset-STRAP: randomized SVD over the subset proximity matrix.
#[derive(Debug, Clone, Copy)]
pub struct SubsetStrap {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Randomized-SVD oversampling.
    pub oversample: usize,
    /// Randomized-SVD power iterations.
    pub power_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SubsetStrap {
    /// Defaults matching the Tree-SVD comparisons.
    pub fn new(dim: usize, seed: u64) -> Self {
        SubsetStrap {
            dim,
            oversample: 10,
            power_iters: 2,
            seed,
        }
    }

    /// Factorise an already-built proximity matrix (`|S| × n` CSR).
    /// Returns left `U√Σ` and right `V√Σ` embeddings.
    pub fn factorize(&self, m_s: &CsrMatrix) -> EmbeddingPair {
        let cfg = RandomizedSvdConfig {
            rank: self.dim,
            oversample: self.oversample,
            power_iters: self.power_iters,
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let svd = randomized_svd(m_s, &cfg, &mut rng);
        let left = pad_cols(svd.embedding(), self.dim);
        let mut right = svd.vt.transpose();
        let sq: Vec<f64> = svd.s.iter().map(|s| s.max(0.0).sqrt()).collect();
        right.scale_cols(&sq);
        EmbeddingPair {
            left,
            right: Some(pad_cols(right, self.dim)),
        }
    }

    /// Full pipeline from the graph: fresh PPR push + factorisation
    /// (how the paper re-runs Subset-STRAP at each snapshot).
    pub fn embed(&self, g: &DynGraph, sources: &[u32], ppr_cfg: PprConfig) -> EmbeddingPair {
        let ppr = SubsetPpr::build(g, sources, ppr_cfg);
        let m_s = proximity_csr(&ppr, g.num_nodes());
        self.factorize(&m_s)
    }
}

/// Global-STRAP: STRAP over every node with budget-equalised `r_max`,
/// subset rows extracted afterwards.
#[derive(Debug, Clone, Copy)]
pub struct GlobalStrap {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GlobalStrap {
    /// Create a global embedder.
    pub fn new(dim: usize, seed: u64) -> Self {
        GlobalStrap { dim, seed }
    }

    /// Embed all nodes, then return the subset rows (left) and all-node
    /// rows (right). `subset_r_max` is what the subset methods use; it is
    /// scaled by `n/|S|` so the global proximity matrix holds roughly the
    /// same number of non-zeros in total.
    pub fn embed(
        &self,
        g: &DynGraph,
        sources: &[u32],
        alpha: f64,
        subset_r_max: f64,
    ) -> EmbeddingPair {
        let n = g.num_nodes();
        let scale = (n as f64 / sources.len().max(1) as f64).max(1.0);
        let cfg = PprConfig {
            alpha,
            r_max: subset_r_max * scale,
        };
        let all: Vec<u32> = (0..n as u32).collect();
        let ppr = SubsetPpr::build(g, &all, cfg);
        let m = proximity_csr(&ppr, n);
        let strap = SubsetStrap::new(self.dim, self.seed);
        let pair = strap.factorize(&m);
        // Extract subset rows from the global left embedding.
        let mut left = tsvd_linalg::DenseMatrix::zeros(sources.len(), self.dim);
        for (i, &s) in sources.iter().enumerate() {
            left.row_mut(i).copy_from_slice(pair.left.row(s as usize));
        }
        EmbeddingPair {
            left,
            right: pair.right,
        }
    }
}

/// Assemble the `|S| × n` proximity CSR from a subset-PPR structure.
pub fn proximity_csr(ppr: &SubsetPpr, n: usize) -> CsrMatrix {
    let rows = ppr.proximity_rows();
    CsrMatrix::from_rows(n, &rows)
}

/// Zero-pad a matrix on the right to exactly `dim` columns.
pub(crate) fn pad_cols(m: tsvd_linalg::DenseMatrix, dim: usize) -> tsvd_linalg::DenseMatrix {
    if m.cols() == dim {
        return m;
    }
    let mut out = tsvd_linalg::DenseMatrix::zeros(m.rows(), dim);
    let keep = m.cols().min(dim);
    for i in 0..m.rows() {
        out.row_mut(i)[..keep].copy_from_slice(&m.row(i)[..keep]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_linalg::svd::exact_svd;
    use tsvd_rt::rng::StdRng;
    use tsvd_rt::rng::{Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> DynGraph {
        let mut g = DynGraph::with_nodes(n);
        while g.num_edges() < m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                g.insert_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn factorize_matches_exact_svd_quality() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_graph(&mut rng, 80, 400);
        let sources: Vec<u32> = (0..10).collect();
        let ppr = SubsetPpr::build(
            &g,
            &sources,
            PprConfig {
                alpha: 0.2,
                r_max: 1e-4,
            },
        );
        let m = proximity_csr(&ppr, 80);
        let strap = SubsetStrap::new(6, 5);
        let pair = strap.factorize(&m);
        assert_eq!(pair.left.rows(), 10);
        assert_eq!(pair.left.cols(), 6);
        let right = pair.right.expect("STRAP provides a right embedding");
        assert_eq!(right.rows(), 80);
        // X·Yᵀ approximates M with near-optimal rank-6 error.
        let approx = pair.left.mul(&right.transpose());
        let err = approx.sub(&m.to_dense()).frobenius_norm();
        let svd = exact_svd(&m.to_dense());
        let opt: f64 = svd.s.iter().skip(6).map(|s| s * s).sum::<f64>().sqrt();
        assert!(err <= 1.3 * opt + 1e-9, "err {err} vs optimal {opt}");
    }

    #[test]
    fn global_strap_has_right_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_graph(&mut rng, 60, 300);
        let sources = vec![3u32, 17, 44];
        let gs = GlobalStrap::new(4, 9);
        let pair = gs.embed(&g, &sources, 0.2, 1e-4);
        assert_eq!(pair.left.rows(), 3);
        assert_eq!(pair.left.cols(), 4);
        assert_eq!(pair.right.as_ref().unwrap().rows(), 60);
    }

    #[test]
    fn global_coarser_than_subset() {
        // The equalised budget makes the global proximity matrix much
        // sparser per row than the subset one — the Table 1 mechanism.
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_graph(&mut rng, 100, 500);
        let sources: Vec<u32> = (0..5).collect();
        let subset_ppr = SubsetPpr::build(
            &g,
            &sources,
            PprConfig {
                alpha: 0.2,
                r_max: 1e-4,
            },
        );
        let subset_m = proximity_csr(&subset_ppr, 100);
        let all: Vec<u32> = (0..100).collect();
        let global_ppr = SubsetPpr::build(
            &g,
            &all,
            PprConfig {
                alpha: 0.2,
                r_max: 1e-4 * (100.0 / 5.0),
            },
        );
        let global_m = proximity_csr(&global_ppr, 100);
        let subset_nnz_per_row = subset_m.nnz() as f64 / 5.0;
        let global_nnz_per_row = global_m.nnz() as f64 / 100.0;
        assert!(
            global_nnz_per_row < subset_nnz_per_row,
            "global {global_nnz_per_row} vs subset {subset_nnz_per_row}"
        );
    }

    #[test]
    fn pad_cols_behaviour() {
        let m = tsvd_linalg::DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let padded = pad_cols(m.clone(), 4);
        assert_eq!(padded.row(0), &[1.0, 2.0, 0.0, 0.0]);
        let same = pad_cols(m.clone(), 2);
        assert_eq!(same, m);
        let cut = pad_cols(m, 1);
        assert_eq!(cut.row(1), &[3.0]);
    }
}
