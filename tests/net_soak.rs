//! Multi-client TCP soak test — the network acceptance criterion:
//!
//! N threaded clients fire interleaved `SubmitEvents` / `Flush` /
//! `GetRows` / `GetEmbedding` at a live TCP server while count- and
//! deadline-triggered flushes race underneath. Every reply must pass the
//! client-side guards (epoch monotone per connection, same epoch ⇒ same
//! checksum, embedding replies reproduce their checksum bit-for-bit — all
//! enforced inside `NetClient::observe`), the final counters must account
//! for every submitted event, and the final engine state must match an
//! offline `TreeSvdPipeline` replay of the engine's journaled flush
//! windows **bitwise** — proving no event was lost, duplicated, or
//! reordered within a window on its way through the socket.

use std::time::Duration;

use tree_svd::prelude::*;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

fn base_graph(n: usize, edges: usize, seed: u64) -> DynGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DynGraph::with_nodes(n);
    while g.num_edges() < edges {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            g.insert_edge(u, v);
        }
    }
    g
}

fn tree_cfg() -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 8,
        num_blocks: 4,
        ..Default::default()
    }
}

#[test]
fn multi_client_tcp_soak_matches_offline_replay_bitwise() {
    const NUM_CLIENTS: usize = 4;
    const ROUNDS: usize = 12;
    const BATCH: usize = 10;

    let n = 120usize;
    let g0 = base_graph(n, 500, 3);
    let sources: Vec<u32> = (0..16).collect();

    let mut engine = ShardedEngine::new(&g0, &sources, 3, PprConfig::default(), tree_cfg());
    engine.enable_window_log(); // journal every applied window for the replay
    let server = EmbeddingServer::start(
        engine,
        ServeConfig {
            num_shards: 3,
            flush_max_events: 24, // small windows: many flushes racing reads
            flush_interval_ms: 3,
            coalesce: true,
            ..Default::default()
        },
    );
    let front = NetFront::start(server);
    let addr = front.listen("127.0.0.1:0").expect("bind TCP listener");

    let workers: Vec<_> = (0..NUM_CLIENTS)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || -> u64 {
                let mut client =
                    NetClient::connect(TcpTransport::new(addr), ClientConfig::default())
                        .expect("client connect");
                client.ping().expect("ping");
                let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                let mut submitted = 0u64;
                for round in 0..ROUNDS {
                    let events: Vec<EdgeEvent> = (0..BATCH)
                        .map(|_| {
                            let u = rng.gen_range(0..n) as u32;
                            let v = rng.gen_range(0..n) as u32;
                            if rng.gen_range(0..5) == 0 {
                                EdgeEvent::delete(u, v)
                            } else {
                                EdgeEvent::insert(u, v)
                            }
                        })
                        .filter(|e| e.u != e.v)
                        .collect();
                    submitted += client.submit_events(events).expect("submit");

                    // Interleave reads: the guards inside the client verify
                    // epoch monotonicity and checksum stability per reply.
                    let rows = client
                        .get_rows(&[c as u32, 10, 15, 90])
                        .expect("rows while flushes race");
                    assert_eq!(rows.dim, 8);
                    if round % 3 == 0 {
                        let emb = client.get_embedding().expect("embedding");
                        assert_eq!(emb.sources.len(), 16);
                        // verify_checksum already ran in the client; an
                        // explicit call documents the torn-read assertion.
                        assert!(emb.verify_checksum(), "torn embedding read");
                    }
                    if round % 4 == 1 {
                        client.flush().expect("flush");
                    }
                }
                submitted
            })
        })
        .collect();

    let total_submitted: u64 = workers.into_iter().map(|h| h.join().expect("client")).sum();
    assert!(total_submitted > 0);

    // Drain everything still pending, then check global accounting.
    let mut tail = NetClient::connect(
        TcpTransport {
            addr: addr.to_string(),
            read_timeout: Some(Duration::from_secs(30)),
            nodelay: true,
        },
        ClientConfig::default(),
    )
    .expect("tail client");
    tail.flush().expect("final flush");
    let stats = tail.stats().expect("stats");
    assert_eq!(
        stats.tenant.events_submitted, total_submitted,
        "server lost or duplicated submissions"
    );
    assert_eq!(
        stats.tenant.events_applied + stats.tenant.events_coalesced,
        total_submitted,
        "not every submitted event was applied or coalesced"
    );
    assert_eq!(stats.tenant.events_pending, 0);
    assert_eq!(stats.tenant.epoch, stats.tenant.batches_flushed);
    // Single-tenant host: the rollup equals the tenant view, and the
    // shared graph recorded each window exactly once.
    assert_eq!(stats.host.tenants, 1);
    assert_eq!(stats.host.events_submitted, stats.tenant.events_submitted);
    assert_eq!(stats.host.batches_recorded, stats.tenant.epoch);
    drop(tail);

    // Offline ground truth: replay the journaled windows through one
    // unsharded pipeline on the same initial graph.
    let engine = front.shutdown();
    let log = engine
        .window_log()
        .expect("window log was enabled")
        .to_vec();
    assert_eq!(log.len() as u64, engine.epoch());
    assert_eq!(
        log.iter().map(|w| w.len() as u64).sum::<u64>(),
        stats.tenant.events_applied,
        "journal disagrees with the applied counter"
    );
    let mut g = g0.clone();
    let mut pipe = TreeSvdPipeline::new(&g, &sources, PprConfig::default(), tree_cfg());
    for window in &log {
        pipe.update(&mut g, window);
    }
    let diff = engine
        .embedding()
        .left()
        .sub(&pipe.embedding().left())
        .max_abs();
    assert_eq!(diff, 0.0, "TCP-served state diverged from offline replay");
    assert_eq!(engine.embedding().sigma, pipe.embedding().sigma);
    assert_eq!(engine.graph().num_edges(), g.num_edges());
}

/// A second, smaller soak over the deterministic loopback transport with a
/// single client but deadline-triggered flushes — catches torn reads in
/// the pure in-process path where scheduling is least socket-like.
#[test]
fn single_client_deadline_flush_soak_over_loopback() {
    let n = 80usize;
    let g0 = base_graph(n, 300, 9);
    let sources: Vec<u32> = (0..10).collect();
    let mut engine = ShardedEngine::new(&g0, &sources, 2, PprConfig::default(), tree_cfg());
    engine.enable_window_log();
    let server = EmbeddingServer::start(
        engine,
        ServeConfig {
            num_shards: 2,
            flush_max_events: 1_000_000,
            flush_interval_ms: 2, // deadline decides every window boundary
            coalesce: true,
            ..Default::default()
        },
    );
    let front = NetFront::start(server);
    let mut client = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(31);
    let mut submitted = 0u64;
    for _ in 0..40 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        submitted += client.submit_events(vec![EdgeEvent::insert(u, v)]).unwrap();
        let _ = client.get_rows(&[1, 5, 9]).unwrap(); // guards run per reply
        std::thread::sleep(Duration::from_millis(1));
    }
    client.flush().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.tenant.events_submitted, submitted);
    assert_eq!(
        stats.tenant.events_applied + stats.tenant.events_coalesced,
        submitted
    );
    assert!(
        stats.tenant.batches_flushed > 1,
        "deadline trigger never split the stream into windows"
    );
    drop(client);

    // Leave events unflushed so shutdown itself must stage and drain the
    // final window (in pipelined mode this is the shutdown-with-staged-
    // window path). The journal replay below still matches bitwise.
    let mut tail = NetClient::connect(front.loopback(), ClientConfig::default()).unwrap();
    tail.submit_events(vec![EdgeEvent::insert(3, 70), EdgeEvent::insert(4, 71)])
        .unwrap();
    drop(tail);

    let engine = front.shutdown();
    let log = engine.window_log().unwrap().to_vec();
    assert_eq!(
        log.len() as u64,
        engine.epoch(),
        "journal disagrees with epoch"
    );
    assert_eq!(
        log.iter().map(|w| w.len() as u64).sum::<u64>(),
        engine.events_applied(),
        "journal disagrees with the engine's applied counter"
    );
    let mut g = g0.clone();
    let mut pipe = TreeSvdPipeline::new(&g, &sources, PprConfig::default(), tree_cfg());
    for window in &log {
        pipe.update(&mut g, window);
    }
    let diff = engine
        .embedding()
        .left()
        .sub(&pipe.embedding().left())
        .max_abs();
    assert_eq!(
        diff, 0.0,
        "loopback-served state diverged from offline replay"
    );
}
