//! Long-run stress test: a hundred update batches with mixed inserts and
//! deletes, verifying the pipeline never drifts from a from-scratch rebuild
//! and all bookkeeping invariants hold at the end.
//!
//! Ignored by default (≈30–60s); run with `cargo test --release -- --ignored`.

use tree_svd::prelude::*;
use tsvd_rt::rng::SliceRandom;
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

#[test]
#[ignore = "long-running stress test; run with -- --ignored"]
fn hundred_batches_without_drift() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 1500usize;
    let mut g = DynGraph::with_nodes(n);
    let mut alive: Vec<(u32, u32)> = Vec::new();
    while g.num_edges() < 6000 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v && g.insert_edge(u, v) {
            alive.push((u, v));
        }
    }
    let subset: Vec<u32> = (0..100).map(|i| (i * 13) as u32).collect();
    // A tighter r_max keeps the signed-residue envelope small: the paper
    // notes directed-graph push has no per-entry guarantee, so the drift
    // check below is calibrated to this threshold.
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-5,
    };
    let cfg = TreeSvdConfig {
        dim: 16,
        num_blocks: 16,
        policy: UpdatePolicy::Lazy { delta: 0.65 },
        ..Default::default()
    };
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg, cfg);
    let static_tree = TreeSvd::new(cfg);

    for batch_no in 0..100 {
        let mut events = Vec::new();
        for _ in 0..40 {
            if rng.gen_bool(0.7) || alive.len() < 100 {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if u != v {
                    events.push(EdgeEvent::insert(u, v));
                    alive.push((u, v));
                }
            } else {
                let k = rng.gen_range(0..alive.len());
                let (u, v) = alive.swap_remove(k);
                events.push(EdgeEvent::delete(u, v));
            }
        }
        events.shuffle(&mut rng);
        let stats = pipe.update(&mut g, &events);
        assert!(stats.blocks_recomputed <= stats.blocks_total);
        let x = pipe.embedding().left();
        assert!(x.is_finite(), "non-finite embedding at batch {batch_no}");
    }

    // After 100 batches of lazy skips, the maintained embedding's quality
    // must stay within the δ-governed envelope of a fresh factorisation.
    let csr = pipe.proximity_csr();
    let lazy_resid = pipe.embedding().projection_residual(&csr);
    let fresh_resid = static_tree.embed(pipe.matrix()).projection_residual(&csr);
    let norm = csr.frobenius_norm();
    assert!(
        lazy_resid <= fresh_resid + std::f64::consts::SQRT_2 * 0.65 * norm,
        "lazy {lazy_resid} vs fresh {fresh_resid} (norm {norm})"
    );

    // And the dynamically maintained PPR still matches a fresh build.
    let fresh_ppr = SubsetPpr::build(&g, &subset, ppr_cfg);
    let fresh = CsrMatrix::from_rows(g.num_nodes(), &fresh_ppr.proximity_rows());
    let drift = csr.to_dense().sub(&fresh.to_dense()).frobenius_norm() / norm.max(1.0);
    assert!(drift < 0.3, "proximity drift {drift} after 100 batches");

    // Downstream view: embeddings from the maintained matrix and from a
    // fully fresh pipeline solve link scoring equally well (cosine of the
    // two Gram matrices).
    let fresh_pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg, cfg);
    let ga = {
        let x = pipe.embedding().left();
        x.mul(&x.transpose())
    };
    let gb = {
        let x = fresh_pipe.embedding().left();
        x.mul(&x.transpose())
    };
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
        dot += a * b;
        na += a * a;
        nb += b * b;
    }
    let cosine = dot / (na.sqrt() * nb.sqrt());
    assert!(cosine > 0.95, "Gram cosine {cosine} after 100 batches");
}
