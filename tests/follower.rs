//! Journal-fed follower replicas over the real wire protocol.
//!
//! A follower is a second [`TenantHost`] — built from the same initial
//! state as the leader — that pulls the leader's post-coalesce flush
//! windows with `GetWindows` over `serve::net` and replays them locally.
//! Because every layer below the reactor is bitwise deterministic, the
//! follower's published embedding at epoch `k` must equal the leader's at
//! epoch `k` bit for bit, for every tenant, at every epoch it publishes —
//! including after a disconnect, and even from a *different process*
//! (the subprocess half below).
//!
//! [`NetFront::start`] owns the leader's `ServerHandle`, so the leader's
//! side of each comparison comes from [`EmbeddingReader`]s captured before
//! the front starts, and ingest is driven over the wire by a separate
//! "driver" client — the same way a real deployment would feed it.

use std::path::PathBuf;
use std::process::Command;

use tsvd_core::{TreeSvdConfig, UpdatePolicy};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::PprConfig;
use tsvd_rt::json::ToJson;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::net::{ClientConfig, NetClient, NetFront, TcpTransport};
use tsvd_serve::{EmbeddingReader, EmbeddingServer, Follower, ServeConfig, TenantHost};

const NODES: usize = 100;
const TENANTS: [u32; 2] = [0, 3];

fn base_graph() -> DynGraph {
    let mut rng = StdRng::seed_from_u64(0xF0110);
    let mut g = DynGraph::with_nodes(NODES);
    while g.num_edges() < 500 {
        let u = rng.gen_range(0..NODES) as u32;
        let v = rng.gen_range(0..NODES) as u32;
        if u != v {
            g.insert_edge(u, v);
        }
    }
    g
}

fn tree_cfg(tenant: u32) -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 8,
        branching: 2,
        num_blocks: 4,
        oversample: 6,
        power_iters: 1,
        policy: UpdatePolicy::Lazy { delta: 0.5 },
        seed: 90 + tenant as u64,
        ..TreeSvdConfig::default()
    }
}

/// The identical host leader and follower both build from the shared seed.
fn build_host(g: &DynGraph) -> TenantHost {
    let mut host = TenantHost::new(g);
    for (i, &t) in TENANTS.iter().enumerate() {
        let sources: Vec<u32> = (0..6).map(|k| (i * 10 + k) as u32).collect();
        host.register(t, &sources, 2, PprConfig::default(), tree_cfg(t))
            .unwrap();
    }
    host
}

fn batch(k: u64) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(0x0F0 + k);
    let mut events = Vec::new();
    for _ in 0..5 {
        let u = rng.gen_range(0..NODES) as u32;
        let v = rng.gen_range(0..NODES) as u32;
        if u != v {
            events.push(EdgeEvent::insert(u, v));
        }
    }
    events.push(EdgeEvent::delete((k % 9) as u32, (30 + k % 13) as u32));
    events
}

/// Leader-side read handles, captured before [`NetFront::start`] takes the
/// `ServerHandle`. Readers are wait-free and keep serving every epoch the
/// reactor publishes.
fn leader_readers(leader: &tsvd_serve::ServerHandle) -> Vec<(u32, EmbeddingReader)> {
    TENANTS
        .iter()
        .map(|&t| (t, leader.reader_for(t).unwrap()))
        .collect()
}

fn assert_follower_matches_leader(
    follower: &Follower,
    readers: &[(u32, EmbeddingReader)],
    epoch: u64,
    ctx: &str,
) {
    for (t, reader) in readers {
        let snap = follower.reader(*t).unwrap().snapshot();
        assert_eq!(snap.epoch(), epoch, "{ctx}: tenant {t} epoch");
        assert!(snap.verify(), "{ctx}: tenant {t} torn snapshot");
        let lead = reader.snapshot();
        assert_eq!(lead.epoch(), epoch, "{ctx}: leader tenant {t} epoch");
        let f = snap.tagged();
        let l = lead.tagged();
        assert_eq!(
            f.left().sub(l.left()).max_abs(),
            0.0,
            "{ctx}: tenant {t} follower diverged from leader at epoch {epoch}"
        );
    }
}

fn connect(addr: &std::net::SocketAddr) -> NetClient {
    NetClient::connect(TcpTransport::new(addr.to_string()), ClientConfig::default()).unwrap()
}

/// Follower catches up over real TCP at every epoch the leader publishes,
/// pages its pulls, and recovers from a disconnect by simply reconnecting.
#[test]
fn follower_serves_leader_bits_at_every_epoch_and_survives_disconnect() {
    let g = base_graph();
    let leader = EmbeddingServer::start_host(
        build_host(&g),
        ServeConfig {
            flush_max_events: 1 << 20,
            flush_interval_ms: 10_000,
            ..ServeConfig::default()
        },
    );
    let readers = leader_readers(&leader);
    let front = NetFront::start(leader);
    let addr = front.listen("127.0.0.1:0").unwrap();
    let mut driver = connect(&addr);
    let mut follower = Follower::new(build_host(&g));
    let mut client = connect(&addr);

    // Phase 1: catch up after every single flush — per-epoch equality.
    for k in 0..3u64 {
        driver.submit_events(batch(k)).unwrap();
        let epoch = driver.flush().unwrap();
        assert_eq!(epoch, k + 1);
        let caught = follower.catch_up(&mut client, 16).unwrap();
        assert_eq!(caught, epoch);
        assert_follower_matches_leader(&follower, &readers, epoch, "lockstep");
    }

    // Phase 2: disconnect, let the leader advance several epochs, then
    // reconnect and page the backlog two windows at a time.
    drop(client);
    for k in 3..8u64 {
        driver.submit_events(batch(k)).unwrap();
        driver.flush().unwrap();
    }
    let mut client = connect(&addr);
    let caught = follower.catch_up(&mut client, 2).unwrap();
    assert_eq!(caught, 8);
    assert_follower_matches_leader(&follower, &readers, 8, "after disconnect");

    // An already-caught-up pull is a cheap no-op.
    assert_eq!(follower.catch_up(&mut client, 2).unwrap(), 8);

    drop(client);
    drop(driver);
    front.shutdown_host();
}

fn dump_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tsvd-follower-dump-{}-{tag}.json",
        std::process::id()
    ))
}

/// Child half of the cross-process test: build the same initial host from
/// the shared seed, catch up over TCP against the leader the parent runs,
/// and dump every tenant's embedding JSON for the parent to diff.
#[test]
#[ignore = "helper: spawned by follower_in_second_process_matches_leader_bitwise"]
fn follower_child_catch_up() {
    let Some(addr) = std::env::var_os("TSVD_FOLLOWER_ADDR") else {
        return;
    };
    let out = PathBuf::from(std::env::var_os("TSVD_FOLLOWER_OUT").expect("parent sets out path"));
    let g = base_graph();
    let mut follower = Follower::new(build_host(&g));
    let mut client = NetClient::connect(
        TcpTransport::new(addr.to_string_lossy().into_owned()),
        ClientConfig::default(),
    )
    .expect("connect to leader");
    let epoch = follower.catch_up(&mut client, 4).expect("catch up");
    let host = follower.into_host();
    let mut fields = vec![("epoch".to_string(), tsvd_rt::json::Json::Int(epoch as i64))];
    for &t in &TENANTS {
        fields.push((format!("t{t}"), host.tagged(t).unwrap().left().to_json()));
    }
    let json = tsvd_rt::json::Json::object(fields);
    std::fs::write(out, json.to_string()).expect("write follower dump");
}

/// A follower in a **separate process**, fed only journal frames over TCP,
/// serves reads bitwise-equal to the leader.
#[test]
fn follower_in_second_process_matches_leader_bitwise() {
    let g = base_graph();
    let leader = EmbeddingServer::start_host(
        build_host(&g),
        ServeConfig {
            flush_max_events: 1 << 20,
            flush_interval_ms: 10_000,
            ..ServeConfig::default()
        },
    );
    let readers = leader_readers(&leader);
    let front = NetFront::start(leader);
    let addr = front.listen("127.0.0.1:0").unwrap();
    let mut driver = connect(&addr);
    for k in 0..5u64 {
        driver.submit_events(batch(k)).unwrap();
        driver.flush().unwrap();
    }

    let out = dump_path("child");
    let _ = std::fs::remove_file(&out);
    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(&exe)
        .args(["--exact", "follower_child_catch_up", "--include-ignored"])
        .env("TSVD_FOLLOWER_ADDR", addr.to_string())
        .env("TSVD_FOLLOWER_OUT", &out)
        .status()
        .expect("spawn follower process");
    assert!(status.success(), "follower process failed");

    let dump = std::fs::read_to_string(&out).expect("read follower dump");
    let json = tsvd_rt::json::Json::parse(&dump).expect("parse follower dump");
    let _ = std::fs::remove_file(&out);
    assert_eq!(json.get("epoch"), Some(&tsvd_rt::json::Json::Int(5)));
    for (t, reader) in &readers {
        // rt::json round-trips every f64 bitwise, so equal JSON text of the
        // leader's left factor means equal bits.
        let lead = reader.snapshot().tagged().left().to_json().to_string();
        let follow = json.get(&format!("t{t}")).expect("tenant dump").to_string();
        assert_eq!(
            follow, lead,
            "tenant {t}: cross-process follower bits differ from leader"
        );
    }

    drop(driver);
    front.shutdown_host();
}
