//! The full pipeline must be bitwise-deterministic across thread counts.
//!
//! `rt::pool`'s primitives place every result by index (or disjoint band)
//! and never reduce across participants, so `TSVD_THREADS=1` and
//! `TSVD_THREADS=4` must produce *identical* embeddings, bit for bit.
//! Because the pool memoizes its size once per process, the two settings
//! are compared by re-running this test binary as a child process per
//! setting (the `--exact --include-ignored` libtest invocation) and
//! diffing the JSON the children dump; `rt::json` round-trips `f64`s
//! exactly, so equal text means equal bits.

use std::process::Command;
use tree_svd::prelude::*;
use tsvd_rt::json::ToJson;

/// Seeded end-to-end run: build on snapshot 1, stream the remaining
/// batches through the dynamic path, return the final embedding JSON.
fn pipeline_embedding_json() -> String {
    let mut cfg = DatasetConfig::youtube();
    cfg.num_nodes = 500;
    cfg.num_edges = 2500;
    cfg.tau = 3;
    let data = SyntheticDataset::generate(&cfg);
    let subset = data.sample_subset(40, 9);
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let tree_cfg = TreeSvdConfig {
        dim: 16,
        branching: 4,
        num_blocks: 8,
        policy: UpdatePolicy::Lazy { delta: 0.65 },
        ..TreeSvdConfig::default()
    };
    let mut g = data.stream.snapshot(1);
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg, tree_cfg);
    for t in 2..=data.stream.num_snapshots() {
        pipe.update(&mut g, data.stream.batch(t));
    }
    pipe.embedding().to_json().to_string()
}

/// Child-process helper: dumps the embedding to `TSVD_DETERM_OUT`. Ignored
/// in normal runs; `embedding_bitwise_identical_across_thread_counts`
/// drives it with `TSVD_THREADS` pinned.
#[test]
#[ignore = "helper: spawned by embedding_bitwise_identical_across_thread_counts"]
fn determinism_child_dump() {
    let Some(path) = std::env::var_os("TSVD_DETERM_OUT") else {
        return;
    };
    std::fs::write(path, pipeline_embedding_json()).expect("write embedding dump");
}

#[test]
fn embedding_bitwise_identical_across_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    let mut dumps = Vec::new();
    for threads in ["1", "4"] {
        let path =
            std::env::temp_dir().join(format!("tsvd_determ_{}_{threads}.json", std::process::id()));
        let status = Command::new(&exe)
            .args(["--exact", "determinism_child_dump", "--include-ignored"])
            .env("TSVD_THREADS", threads)
            .env("TSVD_DETERM_OUT", &path)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child with TSVD_THREADS={threads} failed");
        let dump = std::fs::read(&path).expect("read embedding dump");
        assert!(!dump.is_empty(), "child wrote an empty dump");
        let _ = std::fs::remove_file(&path);
        dumps.push(dump);
    }
    assert!(
        dumps[0] == dumps[1],
        "embedding differs between TSVD_THREADS=1 and TSVD_THREADS=4"
    );
}
