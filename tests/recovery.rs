//! Kill-and-recover: a server streaming windows through a `tsvd-store` WAL
//! is SIGKILLed mid-stream, and recovery must land on an embedding
//! **bitwise identical** to an uninterrupted offline replay — per tenant,
//! at any shard count.
//!
//! The parent spawns this same test binary as a child
//! (`recovery_child_server`, the `thread_determinism` subprocess pattern),
//! waits for the child to report it has published enough epochs past a
//! periodic checkpoint, then kills it without warning. Ground truth is the
//! durable log itself: every window `tsvd_store::read_windows` returns is
//! replayed offline through a fresh [`TenantHost`] *and* through a plain
//! [`TreeSvdPipeline`], and both must match the recovered host bit for
//! bit. Tenant count follows `TSVD_TENANTS` (default 2; the CI matrix runs
//! 3).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use tree_svd::prelude::*;
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::{EmbeddingServer, ServeConfig, TenantHost};
use tsvd_store::{read_windows, recover, StoreConfig, WalStore};

const NODES: usize = 120;

fn num_tenants() -> usize {
    std::env::var("TSVD_TENANTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(2)
}

fn base_graph() -> DynGraph {
    let mut rng = StdRng::seed_from_u64(0xEC0);
    let mut g = DynGraph::with_nodes(NODES);
    while g.num_edges() < 600 {
        let u = rng.gen_range(0..NODES) as u32;
        let v = rng.gen_range(0..NODES) as u32;
        if u != v {
            g.insert_edge(u, v);
        }
    }
    g
}

fn tree_cfg(tenant: usize) -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 8,
        branching: 2,
        num_blocks: 4,
        oversample: 6,
        power_iters: 1,
        policy: UpdatePolicy::Lazy { delta: 0.5 },
        seed: 40 + tenant as u64,
        ..TreeSvdConfig::default()
    }
}

fn tenant_sources(tenant: usize) -> Vec<u32> {
    (0..6).map(|i| (tenant * 8 + i) as u32).collect()
}

/// The host every process builds identically: `TSVD_TENANTS` tenants over
/// one shared graph, all sharded `shards` ways.
fn build_host(g: &DynGraph, shards: usize) -> TenantHost {
    let mut host = TenantHost::new(g);
    for t in 0..num_tenants() {
        host.register(
            t as u32,
            &tenant_sources(t),
            shards,
            PprConfig::default(),
            tree_cfg(t),
        )
        .unwrap();
    }
    host
}

/// Deterministic submitted batch `k`, with intra-batch duplicates so the
/// server's coalescing actually rewrites windows before they hit the WAL.
fn batch(k: u64) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(0xBA7C + k);
    let mut events = Vec::new();
    for _ in 0..6 {
        let u = rng.gen_range(0..NODES) as u32;
        let v = rng.gen_range(0..NODES) as u32;
        if u == v {
            continue;
        }
        events.push(EdgeEvent::insert(u, v));
        if rng.gen_bool(0.4) {
            events.push(EdgeEvent::delete(u, v)); // coalesces the pair away
        }
    }
    events.push(EdgeEvent::insert((k % 7) as u32, (40 + k % 11) as u32));
    events
}

fn marker_path(dir: &Path) -> PathBuf {
    dir.join("child-streamed-enough")
}

/// Child half: start a WAL-backed server over a fresh store and stream
/// batches until killed. Touches the marker file once at least 5 epochs
/// are durable (past the periodic checkpoint at 3), then keeps streaming
/// so the parent's SIGKILL lands mid-flight.
#[test]
#[ignore = "helper: spawned by kill_and_recover_matches_offline_replay"]
fn recovery_child_server() {
    let Some(dir) = std::env::var_os("TSVD_RECOVERY_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let shards: usize = std::env::var("TSVD_RECOVERY_SHARDS")
        .expect("parent sets shard count")
        .parse()
        .unwrap();
    let g = base_graph();
    let host = build_host(&g, shards);
    let store = WalStore::create(StoreConfig::new(&dir), &host).expect("fresh store");
    let cfg = ServeConfig {
        flush_max_events: 1 << 20, // flushes are driven by flush_sync below
        flush_interval_ms: 10_000,
        coalesce: true,
        wal: true,
        checkpoint_every: 3,
        ..ServeConfig::default()
    };
    let server = EmbeddingServer::start_host_with_store(host, cfg, Box::new(store));
    for k in 0..10_000u64 {
        server.submit_batch(batch(k));
        let epoch = server.flush_sync();
        if epoch >= 5 {
            std::fs::write(marker_path(&dir), b"ok").unwrap();
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Unreachable in practice: the parent kills us long before 10k windows.
}

#[test]
fn kill_and_recover_matches_offline_replay() {
    let exe = std::env::current_exe().expect("test binary path");
    for shards in [1usize, 3] {
        let dir =
            std::env::temp_dir().join(format!("tsvd-recovery-{}-s{shards}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut child = Command::new(&exe)
            .args(["--exact", "recovery_child_server", "--include-ignored"])
            .env("TSVD_RECOVERY_DIR", &dir)
            .env("TSVD_RECOVERY_SHARDS", shards.to_string())
            .spawn()
            .expect("spawn child server process");
        let deadline = Instant::now() + Duration::from_secs(120);
        while !marker_path(&dir).exists() {
            assert!(
                Instant::now() < deadline,
                "child (shards={shards}) never reached epoch 5"
            );
            if let Some(status) = child.try_wait().unwrap() {
                panic!("child (shards={shards}) exited early: {status}");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        child.kill().expect("SIGKILL child"); // no cleanup, no final checkpoint
        let _ = child.wait();

        // Recover from checkpoint + WAL…
        let rec = recover(StoreConfig::new(&dir)).expect("recovery");
        assert!(
            rec.checkpoint_epoch >= 3,
            "shards={shards}: periodic checkpoint never fired"
        );
        assert!(rec.host.batches_recorded() >= 5);

        // …and rebuild the ground truth offline from the durable windows.
        let windows = read_windows(&dir).unwrap();
        assert_eq!(windows.len() as u64, rec.host.batches_recorded());
        let g = base_graph();
        let mut offline = build_host(&g, shards);
        for (i, (epoch, events)) in windows.iter().enumerate() {
            assert_eq!(*epoch, i as u64 + 1, "log epochs must be dense");
            offline.apply_batch(events);
        }
        for t in 0..num_tenants() as u32 {
            let a = rec.host.tagged(t).unwrap();
            let b = offline.tagged(t).unwrap();
            assert_eq!(
                a.left().sub(b.left()).max_abs(),
                0.0,
                "shards={shards}: tenant {t} recovered differently than offline replay"
            );
        }

        // The paper-trail check: tenant 0 must also equal a plain
        // single-pipeline replay (no serving layer at all).
        let mut g = base_graph();
        let mut pipe =
            TreeSvdPipeline::new(&g, &tenant_sources(0), PprConfig::default(), tree_cfg(0));
        for (_, events) in &windows {
            pipe.update(&mut g, events);
        }
        let rec0 = rec.host.tagged(0).unwrap();
        assert_eq!(
            pipe.embedding().left().sub(rec0.left()).max_abs(),
            0.0,
            "shards={shards}: recovery diverged from TreeSvdPipeline replay"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Clean shutdown writes a final checkpoint at the last epoch, so a
/// restart replays zero windows and still lands on identical bits.
#[test]
fn clean_shutdown_checkpoints_and_restarts_without_replay() {
    let dir = std::env::temp_dir().join(format!("tsvd-clean-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let g = base_graph();
    let host = build_host(&g, 2);
    let store = WalStore::create(StoreConfig::new(&dir), &host).unwrap();
    let cfg = ServeConfig {
        flush_max_events: 1 << 20,
        flush_interval_ms: 10_000,
        wal: true,
        ..ServeConfig::default()
    };
    let server = EmbeddingServer::start_host_with_store(host, cfg, Box::new(store));
    for k in 0..4u64 {
        server.submit_batch(batch(k));
        server.flush_sync();
    }
    let live = server.shutdown_host();
    assert_eq!(live.batches_recorded(), 4);

    let rec = recover(StoreConfig::new(&dir)).expect("recovery after clean shutdown");
    assert_eq!(rec.checkpoint_epoch, 4, "shutdown checkpoint missing");
    assert_eq!(rec.windows_replayed, 0, "clean restart should not replay");
    for t in 0..num_tenants() as u32 {
        let a = rec.host.tagged(t).unwrap();
        let b = live.tagged(t).unwrap();
        assert_eq!(a.left().sub(b.left()).max_abs(), 0.0, "tenant {t} drifted");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
