//! CI accuracy-regression gate for the incremental SVD update path.
//!
//! The exact recompute path is the oracle: every battery here drives a long
//! randomized update stream through the incremental kernel (or the
//! three-tier dynamic tree, or the sharded serving engine) and bounds the
//! drift — reconstruction residual against the Eckart–Young optimum,
//! subspace angle against the oracle's top-k basis, `projection_residual`
//! against a fresh static rebuild. Run by `ci.sh` under the default thread
//! pool and `TSVD_THREADS=1`.

use tree_svd::linalg::svd::{exact_svd, exact_truncated_svd};
use tree_svd::linalg::{svd_update_rows, RowDelta};
use tree_svd::prelude::*;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

/// A dense `m × n` matrix with a strong rank-`k` head and a weak tail —
/// the spectral gap keeps the top-`k` subspace well-conditioned, so
/// subspace-angle comparisons against the oracle are meaningful
/// (Davis–Kahan: angle ≤ ‖perturbation‖ / gap).
fn gapped_matrix(rng: &mut StdRng, m: usize, n: usize, k: usize) -> DenseMatrix {
    let g = DenseMatrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
    let svd = exact_svd(&g);
    let s: Vec<f64> = (0..svd.rank())
        .map(|i| {
            if i < k {
                10.0 * 0.85f64.powi(i as i32)
            } else {
                0.05
            }
        })
        .collect();
    Svd {
        u: svd.u,
        s,
        vt: svd.vt,
    }
    .reconstruct()
}

/// `1..=max_rows` sparse row deltas with distinct rows and small entries.
fn random_deltas(
    rng: &mut StdRng,
    m: usize,
    n: usize,
    max_rows: usize,
    scale: f64,
) -> Vec<RowDelta> {
    let c = rng.gen_range(1..max_rows + 1);
    let mut rows: Vec<usize> = (0..m).collect();
    (0..c)
        .map(|_| {
            let row = rows.swap_remove(rng.gen_range(0..rows.len()));
            let mut entries: Vec<(u32, f64)> = Vec::new();
            for col in 0..n as u32 {
                if rng.gen_bool(0.1) {
                    entries.push((col, rng.gen_range(-scale..scale)));
                }
            }
            if entries.is_empty() {
                entries.push((rng.gen_range(0..n as u32), scale));
            }
            RowDelta { row, entries }
        })
        .collect()
}

fn apply_dense(a: &mut DenseMatrix, deltas: &[RowDelta]) {
    for d in deltas {
        for &(col, val) in &d.entries {
            let cur = a.get(d.row, col as usize);
            a.set(d.row, col as usize, cur + val);
        }
    }
}

/// Long randomized stream: after every incremental update, the
/// factorisation's residual stays within a whisker of the Eckart–Young
/// optimum and its left subspace stays aligned with the oracle's.
#[test]
fn incremental_stream_tracks_exact_oracle() {
    let mut rng = StdRng::seed_from_u64(71);
    let (m, n, k) = (40usize, 60usize, 8usize);
    let mut a = gapped_matrix(&mut rng, m, n, k);
    let mut inc = exact_truncated_svd(&a, k);
    for round in 0..50 {
        let deltas = random_deltas(&mut rng, m, n, 3, 0.05);
        apply_dense(&mut a, &deltas);
        inc = svd_update_rows(&inc, &deltas, k);

        let oracle = exact_svd(&a);
        let opt_tail: f64 = oracle.s.iter().skip(k).map(|s| s * s).sum::<f64>().sqrt();
        let inc_resid = inc.reconstruct().sub(&a).frobenius_norm();
        assert!(
            inc_resid <= opt_tail + 0.02 * a.frobenius_norm(),
            "round {round}: residual drift {inc_resid} vs optimal {opt_tail}"
        );

        // Subspace angle: smallest singular value of `U_optᵀ·U_inc` is
        // cos(θ_max) between the two k-dim left subspaces.
        let overlap = oracle.truncate(k).u.t_mul(&inc.u);
        let cos_min = exact_svd(&overlap).s.last().copied().unwrap_or(0.0);
        assert!(
            cos_min >= 0.95,
            "round {round}: subspace angle blew up (cos θ = {cos_min})"
        );
    }
}

/// `k ≥ rank` edge case: when the target rank exceeds the matrix rank and
/// the expanded core covers the rank growth, the incremental update is
/// exact, and an empty delta set is a bitwise no-op.
#[test]
fn rank_deficient_and_empty_delta_edge_cases() {
    let mut rng = StdRng::seed_from_u64(72);
    let left = DenseMatrix::from_fn(20, 3, |_, _| rng.gen_range(-1.0..1.0));
    let right = DenseMatrix::from_fn(3, 30, |_, _| rng.gen_range(-1.0..1.0));
    let mut a = left.mul(&right);
    // Factorised at rank 8 ≫ true rank 3.
    let svd = exact_truncated_svd(&a, 8);
    assert!(svd.rank() <= 8);

    // Empty deltas: bitwise no-op.
    let same = svd_update_rows(&svd, &[], 8);
    assert_eq!(same.s, svd.s);
    assert!(same.u.sub(&svd.u).max_abs() == 0.0);
    assert!(same.vt.sub(&svd.vt).max_abs() == 0.0);

    // 4 fresh row deltas: rank grows to ≤ 3 + 4 ≤ 8, so the truncated
    // update loses nothing — reconstruction matches the dense truth.
    let deltas = random_deltas(&mut rng, 20, 30, 4, 0.5);
    apply_dense(&mut a, &deltas);
    let up = svd_update_rows(&svd, &deltas, 8);
    assert!(
        up.reconstruct().sub(&a).max_abs() < 1e-8,
        "k ≥ rank update must be exact: {}",
        up.reconstruct().sub(&a).max_abs()
    );
}

/// Three-tier dynamic tree against its exact twin: over a long stream of
/// moderate row changes, the incremental policy's embedding keeps the same
/// Lemma 3.4 `projection_residual` envelope as the always-refactorise
/// policy, and the cheap tiers actually carry the work.
#[test]
fn dynamic_tree_incremental_policy_bounds_drift() {
    let mut rng = StdRng::seed_from_u64(73);
    let (rows, cols, blocks) = (16usize, 128usize, 8usize);
    let mk_cfg = |policy| TreeSvdConfig {
        dim: 8,
        branching: 2,
        num_blocks: blocks,
        policy,
        ..TreeSvdConfig::default()
    };
    let inc_cfg = mk_cfg(UpdatePolicy::lazy_incremental(0.3));
    let exact_cfg = mk_cfg(UpdatePolicy::Lazy { delta: 0.3 });

    let mut m = BlockedProximityMatrix::new(rows, cols, blocks);
    for i in 0..rows {
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for c in 0..cols as u32 {
            if rng.gen_bool(0.3) {
                entries.push((c, rng.gen_range(0.1..2.0)));
            }
        }
        m.set_row(i, &entries);
    }
    let mut inc_tree = DynamicTreeSvd::new(inc_cfg);
    let mut exact_tree = DynamicTreeSvd::new(exact_cfg);
    inc_tree.build(&m);
    exact_tree.build(&m);

    let mut total = tree_svd::core::UpdateStats::default();
    for round in 0..20 {
        // Scale a few random rows by 5–30%: moderate relative deltas.
        for _ in 0..4 {
            let i = rng.gen_range(0..rows);
            let factor = 1.0 + rng.gen_range(0.05..0.3);
            let mut full: Vec<(u32, f64)> = Vec::new();
            for j in 0..m.num_blocks() {
                let (start, _) = m.block_range(j);
                for &(cc, v) in m.cell(i, j) {
                    full.push((start + cc, v * factor));
                }
            }
            m.set_row(i, &full);
        }
        let (inc_emb, stats) = inc_tree.update(&m);
        let (exact_emb, _) = exact_tree.update(&m);
        total += stats;

        let csr = m.to_csr();
        let norm = csr.frobenius_norm();
        let envelope = std::f64::consts::SQRT_2 * 0.3 * norm;
        let fresh = TreeSvd::new(exact_cfg).embed(&m);
        let fresh_resid = fresh.projection_residual(&csr);
        let inc_resid = inc_emb.projection_residual(&csr);
        let exact_resid = exact_emb.projection_residual(&csr);
        assert!(
            inc_resid <= fresh_resid + envelope,
            "round {round}: incremental drift {inc_resid} vs fresh {fresh_resid}"
        );
        // The incremental path must not be meaningfully worse than the
        // exact lazy path it replaces.
        assert!(
            inc_resid <= exact_resid + 0.05 * norm,
            "round {round}: incremental {inc_resid} vs exact lazy {exact_resid}"
        );
    }
    assert!(
        total.blocks_patched + total.blocks_incremental > 0,
        "cheap tiers never engaged: {total:?}"
    );
}

/// End-to-end through `ShardedEngine` + `EmbeddingServer`: with an explicit
/// `LazyIncremental` policy, every shard count stays bitwise identical to
/// the unsharded offline pipeline, and the per-tier repair counters surface
/// in `ServeStats`.
#[test]
fn sharded_engine_and_server_run_incremental_policy() {
    let mut cfg = DatasetConfig::youtube();
    cfg.num_nodes = 400;
    cfg.num_edges = 2000;
    cfg.tau = 4;
    let data = SyntheticDataset::generate(&cfg);
    let subset = data.sample_subset(32, 5);
    let g0 = data.stream.snapshot(1);
    let mut events = Vec::new();
    for t in 2..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    events.truncate(300);
    let ppr = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let tree_cfg = TreeSvdConfig {
        dim: 16,
        branching: 4,
        num_blocks: 8,
        policy: UpdatePolicy::lazy_incremental(0.3),
        ..TreeSvdConfig::default()
    };

    // Offline truth: unsharded pipeline over the same windows.
    let mut g = g0.clone();
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr, tree_cfg);
    let windows: Vec<&[EdgeEvent]> = events.chunks(60).collect();
    for w in &windows {
        pipe.update(&mut g, w);
    }

    for num_shards in [1usize, 3] {
        let mut engine = ShardedEngine::new(&g0, &subset, num_shards, ppr, tree_cfg);
        for w in &windows {
            engine.apply_batch(w);
        }
        assert_eq!(
            engine
                .embedding()
                .left()
                .sub(&pipe.embedding().left())
                .max_abs(),
            0.0,
            "R = {num_shards} diverged from offline replay"
        );
    }

    // Serve path: the same stream through a server; tier counters must
    // account for every level-1 repair the flushes performed.
    let engine = ShardedEngine::new(&g0, &subset, 2, ppr, tree_cfg);
    let server = EmbeddingServer::start(
        engine,
        ServeConfig {
            num_shards: 2,
            flush_max_events: 60,
            flush_interval_ms: 3_600_000,
            coalesce: false,
            pipeline_depth: 0,
            ..Default::default()
        },
    );
    assert!(server.submit_batch(events.clone()));
    server.flush_sync();
    let stats = server.stats();
    let engine = server.shutdown();
    let totals = engine.total_stats();
    assert_eq!(stats.blocks_patched, totals.blocks_patched as u64);
    assert_eq!(stats.blocks_incremental, totals.blocks_incremental as u64);
    assert_eq!(stats.blocks_refactored, totals.blocks_recomputed as u64);
    assert!(
        stats.blocks_patched + stats.blocks_incremental + stats.blocks_refactored > 0,
        "flushes performed no level-1 repairs: {stats:?}"
    );
}
