//! Multi-process router soak: the scale-out deployment as it would really
//! run — a router process scatter-gathering over two shard processes with
//! a journal-fed follower replica, all talking real TCP — under
//! concurrent writers, a SIGKILL mid-stream, and a clean drain-and-stop.
//!
//! Topology (each box a separate OS process, spawned from this test
//! binary via the `--exact <helper> --include-ignored` idiom):
//!
//! ```text
//!   parent (writers + assertions)
//!        │ wire protocol
//!        ▼
//!   router ──▶ shard 0   (SIGKILLed mid-stream)
//!          ──▶ shard 1   (survivor; ground-truth journal)
//!          ──▶ follower  (range 0 replica, fed from shard 1's journal)
//! ```
//!
//! Ground truth is the **surviving shard's journal**: the windows it
//! retains are exactly the post-coalesce windows every process applied
//! (the router's lockstep broadcast makes the journals interchangeable),
//! so replaying them offline through a fresh per-range host must
//! reproduce — bitwise — every row the router serves, including rows the
//! follower answers after the SIGKILL failover. The final `Shutdown`
//! must drain the still-staged window into the survivor before it exits.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tsvd_core::{Level1Method, PartitionStrategy, TreeSvdConfig, UpdatePolicy};
use tsvd_graph::{DynGraph, EdgeEvent};
use tsvd_ppr::PprConfig;
use tsvd_rt::json::{Json, ToJson};
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};
use tsvd_serve::net::wire::{fnv1a64, FNV_OFFSET};
use tsvd_serve::net::{ClientConfig, NetClient, RowsReply, TcpTransport, WindowsPull};
use tsvd_serve::{
    EmbeddingServer, Follower, NetFront, Router, RouterConfig, RouterFront, ServeConfig,
    ShardEndpoint, ShardMap, ShardedEngine, TenantHost,
};

const NODES: usize = 90;
const WRITERS: usize = 3;
const ROUNDS: usize = 12;

fn base_graph() -> DynGraph {
    let mut rng = StdRng::seed_from_u64(0xB07E5);
    let mut g = DynGraph::with_nodes(NODES);
    while g.num_edges() < 400 {
        let u = rng.gen_range(0..NODES) as u32;
        let v = rng.gen_range(0..NODES) as u32;
        if u != v {
            g.insert_edge(u, v);
        }
    }
    g
}

fn tree_cfg() -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 6,
        branching: 2,
        num_blocks: 4,
        oversample: 4,
        power_iters: 1,
        level1: Level1Method::Randomized,
        policy: UpdatePolicy::Lazy { delta: 0.4 },
        partition: PartitionStrategy::EqualWidth,
        seed: 23,
    }
}

fn subset() -> Vec<u32> {
    (0..16).collect()
}

fn shard_map() -> ShardMap {
    ShardMap::even_split(&subset(), 2)
}

/// The per-range host every process builds from the shared constants —
/// shard `k`'s engine, the follower's seed for range 0, and the parent's
/// offline replay target.
fn range_host(g: &DynGraph, k: usize) -> TenantHost {
    TenantHost::from_engine(
        ShardedEngine::new(
            g,
            shard_map().sources_of(k),
            1,
            PprConfig::default(),
            tree_cfg(),
        ),
        0,
    )
}

/// Flushes are wire-driven only: the windows are exactly what the router
/// broadcast, nothing timer-triggered.
fn serve_cfg() -> ServeConfig {
    ServeConfig {
        flush_max_events: 1 << 20,
        flush_interval_ms: 60_000,
        ..Default::default()
    }
}

/// Writer `w`'s round-`i` batch. Writers overlap on purpose — coalescing
/// may drop events, which is fine because ground truth replays the
/// *post-coalesce* journal windows, not the submitted stream.
fn writer_batch(w: usize, i: usize) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(0x5EED + (w * 1000 + i) as u64);
    let mut events = Vec::new();
    for _ in 0..3 {
        let u = rng.gen_range(0..NODES) as u32;
        let v = rng.gen_range(0..NODES) as u32;
        if u != v {
            events.push(EdgeEvent::insert(u, v));
        }
    }
    events.push(EdgeEvent::delete((w % 7) as u32, (20 + i % 11) as u32));
    events
}

/// The known staged-but-unflushed batch the final `Shutdown` must drain.
/// Distinct edges, so its coalesced window is itself.
fn final_batch() -> Vec<EdgeEvent> {
    vec![
        EdgeEvent::insert(1, 71),
        EdgeEvent::insert(5, 77),
        EdgeEvent::insert(11, 83),
    ]
}

fn connect(addr: &str) -> NetClient {
    NetClient::connect(TcpTransport::new(addr.to_string()), ClientConfig::default()).unwrap()
}

/// Publish `value` at `dir/name` atomically (write-then-rename), so a
/// polling reader never sees a half-written address.
fn publish(dir: &Path, name: &str, value: &str) {
    let tmp = dir.join(format!("{name}.tmp"));
    fs::write(&tmp, value).expect("write marker");
    fs::rename(&tmp, dir.join(name)).expect("rename marker");
}

fn wait_for(dir: &Path, name: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    let path = dir.join(name);
    loop {
        if let Ok(s) = fs::read_to_string(&path) {
            if !s.is_empty() {
                return s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {}",
            path.display()
        );
        thread::sleep(Duration::from_millis(10));
    }
}

fn run_dir() -> PathBuf {
    PathBuf::from(
        std::env::var_os("TSVD_RSOAK_DIR").expect("parent sets TSVD_RSOAK_DIR for helpers"),
    )
}

/// Child: one shard process over its contiguous range. Publishes its
/// address, serves until a wire `Shutdown` stops the front (draining
/// staged windows first), then dumps its final epoch + embedding for the
/// parent to diff. Honors `TSVD_WAL=1` by attaching a real `WalStore`,
/// exactly like the single-shard crash-recovery legs.
#[test]
#[ignore = "helper: spawned by router_soak test as a shard process"]
fn router_soak_child_shard() {
    let Some(range) = std::env::var_os("TSVD_RSOAK_RANGE") else {
        return;
    };
    let k: usize = range.to_string_lossy().parse().expect("range index");
    let dir = run_dir();
    let g = base_graph();
    let host = range_host(&g, k);
    let cfg = serve_cfg();
    let handle = if std::env::var_os("TSVD_WAL").is_some_and(|v| v == "1") {
        let store = tsvd_store::WalStore::create(
            tsvd_store::StoreConfig::new(dir.join(format!("wal-shard{k}"))),
            &host,
        )
        .expect("create shard WAL");
        EmbeddingServer::start_host_with_store(host, cfg, Box::new(store))
    } else {
        EmbeddingServer::start_host(host, cfg)
    };
    let front = NetFront::start(handle);
    let addr = front.listen("127.0.0.1:0").expect("shard listen");
    publish(&dir, &format!("shard{k}.addr"), &addr.to_string());

    assert!(
        front.wait_stopped(Duration::from_secs(600)),
        "shard {k} never told to stop"
    );
    // Wire Shutdown flushed (drained staged windows) before stopping; the
    // reclaimed host is the post-drain state the parent will diff.
    let host = front.shutdown_host();
    let dump = Json::object(vec![
        (
            "epoch".to_string(),
            Json::Int(host.batches_recorded() as i64),
        ),
        ("left".to_string(), host.tagged(0).unwrap().left().to_json()),
    ]);
    publish(&dir, &format!("shard{k}.dump.json"), &dump.to_string());
}

/// Child: range 0's follower replica. Catches up from the *survivor*
/// shard's journal (lockstep makes every shard's journal identical) in a
/// tight loop, serving its published epochs over a read-only front, until
/// the parent drops the stop marker.
#[test]
#[ignore = "helper: spawned by router_soak test as the follower process"]
fn router_soak_child_follower() {
    if std::env::var_os("TSVD_RSOAK_DIR").is_none() {
        return;
    }
    let dir = run_dir();
    let feed_addr = wait_for(&dir, "shard1.addr", Duration::from_secs(60));
    let g = base_graph();
    let mut follower = Follower::new(range_host(&g, 0));
    let front = NetFront::start_readers(vec![(0, follower.reader(0).unwrap())]);
    let addr = front.listen("127.0.0.1:0").expect("follower listen");
    publish(&dir, "follower.addr", &addr.to_string());

    let mut feed = connect(&feed_addr);
    while !dir.join("stop.marker").exists() {
        // Errors are transient (the feed shard mid-restart or shut down at
        // the end): the client reconnects by itself on the next pull.
        let _ = follower.catch_up_or_reseed(&mut feed, 8);
        thread::sleep(Duration::from_millis(5));
    }
    front.shutdown_readers();
}

/// Child: the router process. Wires the shard map to the published
/// addresses, serves scatter-gather until a wire `Shutdown` (which also
/// shuts the shards down), then exits.
#[test]
#[ignore = "helper: spawned by router_soak test as the router process"]
fn router_soak_child_router() {
    if std::env::var_os("TSVD_RSOAK_DIR").is_none() {
        return;
    }
    let dir = run_dir();
    let a0 = wait_for(&dir, "shard0.addr", Duration::from_secs(60));
    let a1 = wait_for(&dir, "shard1.addr", Duration::from_secs(60));
    let af = wait_for(&dir, "follower.addr", Duration::from_secs(60));
    let router = Router::connect(
        shard_map(),
        vec![
            ShardEndpoint::with_follower(&a0, &af),
            ShardEndpoint::leader_only(&a1),
        ],
        RouterConfig {
            // Bounded barrier budget (~0.5 s of cumulative backoff): a
            // mid-storm read that cannot settle fails fast and releases
            // the router lock to the writers; the parent's settle loop
            // simply retries until the follower reaches the survivor's
            // epoch.
            barrier_retries: 14,
            barrier_backoff_ms: 5,
            ..Default::default()
        },
    )
    .expect("router connect");
    let front = RouterFront::start(router);
    let addr = front.listen("127.0.0.1:0").expect("router listen");
    publish(&dir, "router.addr", &addr.to_string());
    assert!(
        front.wait_stopped(Duration::from_secs(600)),
        "router never told to stop"
    );
    drop(front.shutdown()); // None: the wire Shutdown consumed the router.
}

fn spawn_helper(name: &str, dir: &Path, extra: &[(&str, &str)]) -> std::process::Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args(["--exact", name, "--include-ignored"])
        .env("TSVD_RSOAK_DIR", dir);
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.spawn().unwrap_or_else(|e| panic!("spawn {name}: {e}"))
}

/// Page the survivor's full journal: windows `1..=upto`, in order.
fn pull_journal(client: &mut NetClient, upto: u64) -> Vec<Vec<EdgeEvent>> {
    let mut windows = Vec::new();
    let mut after = 0u64;
    while after < upto {
        match client.pull_windows(after, 16).expect("journal pull") {
            WindowsPull::Windows(r) => {
                assert!(!r.windows.is_empty(), "journal dried up at epoch {after}");
                assert_eq!(r.first_epoch, after + 1, "journal stream gap");
                after += r.windows.len() as u64;
                windows.extend(r.windows);
            }
            WindowsPull::Compacted { oldest, requested } => {
                panic!("journal compacted ({oldest}/{requested}) under default retention")
            }
        }
    }
    assert_eq!(windows.len() as u64, upto);
    windows
}

/// Replay `windows` into fresh per-range hosts — the offline ground
/// truth every served row must match bitwise.
fn offline_replay(g: &DynGraph, windows: &[Vec<EdgeEvent>]) -> Vec<TenantHost> {
    (0..2)
        .map(|k| {
            let mut h = range_host(g, k);
            for w in windows {
                h.apply_batch(w);
            }
            h
        })
        .collect()
}

/// Bitwise-compare a router reply against the offline replay, node by
/// node, and check the merged checksum is the FNV chain of the per-range
/// snapshot checksums.
fn assert_reply_matches_offline(reply: &RowsReply, offline: Vec<TenantHost>, epoch: u64) {
    assert_eq!(reply.epoch, epoch);
    let map = shard_map();
    let snaps: Vec<_> = offline
        .into_iter()
        .map(|h| Follower::new(h).reader(0).unwrap().snapshot())
        .collect();
    let mut chain = FNV_OFFSET;
    for snap in &snaps {
        assert_eq!(snap.epoch(), epoch, "offline replay epoch");
        chain = fnv1a64(chain, &snap.checksum().to_bits().to_le_bytes());
    }
    assert_eq!(
        reply.checksum_bits, chain,
        "merged checksum is not the per-range FNV chain"
    );
    for (slot, &node) in subset().iter().enumerate() {
        let row = reply.rows[slot]
            .as_ref()
            .unwrap_or_else(|| panic!("node {node} missing from merged reply"));
        let k = usize::from(!map.sources_of(0).contains(&node));
        let expect = snaps[k].get(node).unwrap();
        assert_eq!(
            row.as_slice(),
            expect,
            "node {node} (range {k}) diverged from offline replay"
        );
    }
}

/// The soak: 4 real processes, 3 concurrent writers, one SIGKILL, one
/// clean shutdown — every served row pinned to the offline replay.
#[test]
fn router_soak_survives_sigkill_and_drains_on_shutdown() {
    let dir = std::env::temp_dir().join(format!("tsvd-router-soak-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create run dir");

    // Processes: two shards, the follower (range 0, fed from shard 1),
    // then the router once everyone has published an address.
    let mut shard0 = spawn_helper(
        "router_soak_child_shard",
        &dir,
        &[("TSVD_RSOAK_RANGE", "0")],
    );
    let mut shard1 = spawn_helper(
        "router_soak_child_shard",
        &dir,
        &[("TSVD_RSOAK_RANGE", "1")],
    );
    wait_for(&dir, "shard0.addr", Duration::from_secs(60));
    let a1 = wait_for(&dir, "shard1.addr", Duration::from_secs(60));
    let mut follower = spawn_helper("router_soak_child_follower", &dir, &[]);
    wait_for(&dir, "follower.addr", Duration::from_secs(60));
    let mut router = spawn_helper("router_soak_child_router", &dir, &[]);
    let router_addr = wait_for(&dir, "router.addr", Duration::from_secs(60));

    // Concurrent writers, each on its own connection: submit rounds with
    // periodic flushes. Writes may momentarily fail while the SIGKILL
    // failover settles; the router heals and the stream continues.
    let write_ok = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let addr = router_addr.clone();
            let ok = write_ok.clone();
            thread::Builder::new()
                .name(format!("soak-writer-{w}"))
                .spawn(move || {
                    let mut client = connect(&addr);
                    for i in 0..ROUNDS {
                        let mut round_ok = client.submit_events(writer_batch(w, i)).is_ok();
                        if i % 3 == 2 {
                            round_ok &= client.flush().is_ok();
                        }
                        if round_ok {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        thread::sleep(Duration::from_millis(5));
                    }
                })
                .expect("spawn writer")
        })
        .collect();

    // SIGKILL shard 0 mid-stream, then keep reading through the storm:
    // successful replies must always be whole (every subset row present).
    thread::sleep(Duration::from_millis(60));
    shard0.kill().expect("SIGKILL shard 0");
    let mut reader = connect(&router_addr);
    let mut reads_ok = 0u64;
    while writers.iter().any(|w| !w.is_finished()) {
        if let Ok(reply) = reader.get_rows(&subset()) {
            assert_eq!(reply.rows.len(), subset().len());
            assert!(reply.rows.iter().all(Option::is_some), "torn merged reply");
            reads_ok += 1;
        }
        thread::sleep(Duration::from_millis(25));
    }
    for w in writers {
        w.join().expect("writer panicked");
    }
    let status0 = shard0.wait().expect("reap shard 0");
    assert!(!status0.success(), "shard 0 should have died by signal");
    assert!(
        write_ok.load(Ordering::Relaxed) >= (WRITERS * ROUNDS) as u64 / 2,
        "most writes should survive the failover"
    );

    // Quiesce: a final flush pins the stream, then wait out the barrier
    // while the follower catches up to the survivor's epoch.
    let epoch = reader.flush().expect("final flush");
    assert!(epoch >= 1, "at least one window must have flushed");
    let deadline = Instant::now() + Duration::from_secs(30);
    let final_reply = loop {
        match reader.get_rows(&subset()) {
            Ok(r) if r.epoch == epoch => break r,
            _ if Instant::now() >= deadline => {
                panic!("router never served a whole read at epoch {epoch}")
            }
            _ => thread::sleep(Duration::from_millis(20)),
        }
    };
    let _ = reads_ok; // best-effort: mid-storm reads may all hit the barrier

    // Ground truth: the survivor's journal, replayed offline per range.
    // This is the headline bit: rows served across the failover — range 0
    // now comes from the follower process — equal the offline replay.
    let g = base_graph();
    let mut truth = connect(&a1);
    let windows = pull_journal(&mut truth, epoch);
    assert_reply_matches_offline(&final_reply, offline_replay(&g, &windows), epoch);

    // Clean shutdown drains staged windows: stage a known batch without
    // flushing, then Shutdown through the router. The router flushes the
    // shards before stopping them, so the survivor's final dump must be
    // one epoch ahead, bitwise equal to replay-plus-final-batch.
    reader
        .submit_events(final_batch())
        .expect("stage final batch");
    reader.shutdown_server().expect("router shutdown");

    let status_r = router.wait().expect("reap router");
    assert!(status_r.success(), "router process failed");
    let status1 = shard1.wait().expect("reap shard 1");
    assert!(status1.success(), "survivor shard process failed");

    let dump = wait_for(&dir, "shard1.dump.json", Duration::from_secs(30));
    let dump = Json::parse(&dump).expect("parse survivor dump");
    assert_eq!(
        dump.get("epoch"),
        Some(&Json::Int((epoch + 1) as i64)),
        "shutdown did not drain the staged window"
    );
    let mut off1 = range_host(&g, 1);
    for w in &windows {
        off1.apply_batch(w);
    }
    off1.apply_batch(&final_batch());
    let expect = off1.tagged(0).unwrap().left().to_json().to_string();
    assert_eq!(
        dump.get("left").map(|j| j.to_string()),
        Some(expect),
        "survivor's drained state diverged from offline replay"
    );

    // Stop the follower and reap it.
    publish(&dir, "stop.marker", "stop");
    let status_f = follower.wait().expect("reap follower");
    assert!(status_f.success(), "follower process failed");
    let _ = fs::remove_dir_all(&dir);
}
