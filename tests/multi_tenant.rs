//! Multi-subset tenancy acceptance tests — N engines, one graph:
//!
//! 1. **Per-tenant equivalence.** Three tenants with distinct subsets and
//!    shard counts share one `TenantHost`; every flushed window is
//!    recorded on the shared graph exactly once and replayed into every
//!    tenant. Each tenant's final embedding must be **bitwise identical**
//!    to an offline single-pipeline replay of its own journal over its
//!    own subset — at R ∈ {1, 3}, under whatever `TSVD_THREADS` /
//!    `TSVD_PIPELINE_DEPTH` / `TSVD_SVD_UPDATE` the ci matrix sets.
//! 2. **Quota backpressure over the wire.** A tenant over its submission
//!    quota draws a tenant-level `Reply::Error` that leaves the
//!    connection open and the other tenant unaffected.
//! 3. **TCP soak.** Interleaved writers on different tenants drive a live
//!    TCP front; per-tenant counters attribute every event to its
//!    submitting tenant, the host rollup accounts for all of them, and
//!    every tenant's journal replays bitwise. `TSVD_TENANTS` scales the
//!    tenant count (default 2).

use std::time::Duration;

use tree_svd::prelude::*;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

fn small_dataset() -> SyntheticDataset {
    let mut cfg = DatasetConfig::youtube();
    cfg.num_nodes = 400;
    cfg.num_edges = 2000;
    cfg.tau = 4;
    SyntheticDataset::generate(&cfg)
}

fn tree_cfg() -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 8,
        branching: 4,
        num_blocks: 4,
        policy: UpdatePolicy::Lazy { delta: 0.5 },
        ..TreeSvdConfig::default()
    }
}

fn ppr_cfg() -> PprConfig {
    PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    }
}

/// Tenant count for the soak: `TSVD_TENANTS` if set (the ci matrix runs a
/// 3-tenant leg), else 2.
fn tenant_count() -> usize {
    std::env::var("TSVD_TENANTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Three tenants, distinct subsets, shared edge stream: each tenant's
/// served embedding must equal its own offline replay bitwise, at every
/// shard count — and the shared graph records each window exactly once.
#[test]
fn three_tenants_bitwise_equal_their_own_offline_replay() {
    let data = small_dataset();
    let g0 = data.stream.snapshot(1);
    let subsets: Vec<Vec<u32>> = vec![
        data.sample_subset(24, 5),
        data.sample_subset(20, 11),
        data.sample_subset(16, 23),
    ];
    let mut events = Vec::new();
    for t in 2..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    events.truncate(600);
    let chunks: Vec<Vec<EdgeEvent>> = events.chunks(75).map(|c| c.to_vec()).collect();
    assert!(chunks.len() >= 4, "want several flush windows");

    let mut per_r: Vec<Vec<Vec<u64>>> = Vec::new(); // [run][tenant] -> left bits
    for num_shards in [1usize, 3] {
        let mut host = TenantHost::new(&g0);
        for (t, subset) in subsets.iter().enumerate() {
            host.register(t as TenantId, subset, num_shards, ppr_cfg(), tree_cfg())
                .expect("fresh id");
        }
        host.enable_window_log();
        let server = EmbeddingServer::start_host(
            host,
            ServeConfig {
                num_shards,
                flush_max_events: usize::MAX,
                flush_interval_ms: 60_000,
                coalesce: true,
                ..Default::default()
            },
        );

        // Submissions rotate over tenants: the tag picks who is charged
        // for the events, not who sees them — the stream is global.
        for (i, chunk) in chunks.iter().enumerate() {
            let tenant = (i % subsets.len()) as TenantId;
            server
                .submit_batch_to(tenant, chunk.clone())
                .expect("admission");
            assert_eq!(server.flush_sync(), (i + 1) as u64);
        }

        // Record-once: one `RecordedBatch` per window, every tenant at the
        // same epoch, rollup pending drained.
        let host_stats = server.host_stats();
        assert_eq!(host_stats.tenants, subsets.len());
        assert_eq!(host_stats.batches_recorded, chunks.len() as u64);
        assert_eq!(host_stats.epoch, chunks.len() as u64);
        assert_eq!(host_stats.events_pending, 0);
        assert_eq!(host_stats.events_submitted, events.len() as u64);
        for t in 0..subsets.len() as TenantId {
            let s = server.stats_for(t).expect("registered tenant");
            assert_eq!(s.tenant, t);
            assert_eq!(s.epoch, chunks.len() as u64);
            assert_eq!(s.events_pending, 0);
            assert_eq!(s.events_submitted, s.events_applied + s.events_coalesced);
        }

        let host = server.shutdown_host();
        let mut bits_per_tenant = Vec::new();
        for (t, subset) in subsets.iter().enumerate() {
            let t = t as TenantId;
            let log = host.window_log(t).expect("journal enabled").to_vec();
            assert_eq!(log.len() as u64, chunks.len() as u64);
            // Ground truth: this tenant's own single-pipeline replay of
            // the shared journal over its own subset.
            let mut g = g0.clone();
            let mut pipe = TreeSvdPipeline::new(&g, subset, ppr_cfg(), tree_cfg());
            for window in &log {
                pipe.update(&mut g, window);
            }
            let left = host.embedding(t).expect("tenant embedding").left();
            assert_eq!(
                left.sub(&pipe.embedding().left()).max_abs(),
                0.0,
                "R={num_shards} tenant {t}: diverged from offline replay"
            );
            assert_eq!(
                host.embedding(t).unwrap().sigma,
                pipe.embedding().sigma,
                "R={num_shards} tenant {t}: sigma diverged"
            );
            bits_per_tenant.push(
                left.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<u64>>(),
            );
        }
        // All tenants journal the identical global window sequence.
        let log0 = host.window_log(0).unwrap().to_vec();
        for t in 1..subsets.len() as TenantId {
            assert_eq!(
                host.window_log(t).unwrap().to_vec(),
                log0,
                "tenant {t} journalled a different window sequence"
            );
        }
        per_r.push(bits_per_tenant);
    }
    // Sharding stays invisible per tenant.
    assert_eq!(
        per_r[0], per_r[1],
        "per-tenant embeddings differ between shard counts"
    );
}

/// Over-quota submissions draw a tenant-level error that keeps the
/// connection open; the other tenant keeps writing, and a flush releases
/// the quota.
#[test]
fn wire_quota_rejection_keeps_connection_open_and_tenants_isolated() {
    let data = small_dataset();
    let g0 = data.stream.snapshot(1);
    let mut host = TenantHost::new(&g0);
    host.register(0, &data.sample_subset(12, 1), 1, ppr_cfg(), tree_cfg())
        .unwrap();
    host.register(1, &data.sample_subset(12, 2), 1, ppr_cfg(), tree_cfg())
        .unwrap();
    let server = EmbeddingServer::start_host(
        host,
        ServeConfig {
            num_shards: 1,
            flush_max_events: usize::MAX,
            flush_interval_ms: 60_000,
            coalesce: true,
            tenant_quota: 4,
            ..Default::default()
        },
    );
    let front = NetFront::start(server);
    let mut a = NetClient::connect(
        front.loopback(),
        ClientConfig {
            tenant: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let mut b = NetClient::connect(
        front.loopback(),
        ClientConfig {
            tenant: 1,
            ..Default::default()
        },
    )
    .unwrap();

    let batch = vec![EdgeEvent::insert(0, 50), EdgeEvent::insert(1, 51)];
    assert_eq!(a.submit_events(batch.clone()).unwrap(), 2);
    assert_eq!(a.submit_events(batch.clone()).unwrap(), 2);
    // Tenant 0 is at its quota of 4 pending events: rejected, not closed.
    let err = a.submit_events(batch.clone()).unwrap_err();
    assert!(
        err.to_string().contains("quota"),
        "expected a quota error, got: {err}"
    );
    // The connection survived the rejection…
    a.ping()
        .expect("connection stayed open after quota rejection");
    assert_eq!(a.reconnects(), 0);
    // …and tenant 1 was never throttled by tenant 0's backlog.
    assert_eq!(b.submit_events(batch.clone()).unwrap(), 2);

    // Flushing applies the backlog, freeing tenant 0's quota.
    a.flush().unwrap();
    assert_eq!(a.submit_events(batch).unwrap(), 2);

    // A client pinned to an unregistered tenant is rejected per request,
    // connection-level liveness intact.
    let mut ghost = NetClient::connect(
        front.loopback(),
        ClientConfig {
            tenant: 99,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(ghost.get_rows(&[0]).is_err());
    ghost.ping().expect("unknown tenant still gets transport");

    drop((a, b, ghost));
    front.shutdown_host();
}

/// Interleaved writers on different tenants over real TCP: per-tenant
/// attribution, host-rollup accounting, and per-tenant bitwise replay.
#[test]
fn tcp_soak_interleaved_tenant_writers_replay_bitwise() {
    const ROUNDS: usize = 10;
    const BATCH: usize = 8;

    let nt = tenant_count();
    let n = 120usize;
    let mut rng = StdRng::seed_from_u64(3);
    let mut g0 = DynGraph::with_nodes(n);
    while g0.num_edges() < 400 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            g0.insert_edge(u, v);
        }
    }

    let mut host = TenantHost::new(&g0);
    let mut subsets = Vec::new();
    for t in 0..nt {
        // Distinct (overlapping) subsets and varying shard counts.
        let subset: Vec<u32> = (t as u32 * 6..t as u32 * 6 + 12).collect();
        host.register(t as TenantId, &subset, 1 + t % 3, ppr_cfg(), tree_cfg())
            .expect("fresh id");
        subsets.push(subset);
    }
    host.enable_window_log();
    let server = EmbeddingServer::start_host(
        host,
        ServeConfig {
            num_shards: 2,
            flush_max_events: 24, // small windows: many flushes racing reads
            flush_interval_ms: 3,
            coalesce: true,
            ..Default::default()
        },
    );
    let front = NetFront::start(server);
    let addr = front.listen("127.0.0.1:0").expect("bind TCP listener");

    // One writer per tenant, each pinned to its own id.
    let writers: Vec<_> = (0..nt)
        .map(|t| {
            let addr = addr.to_string();
            let probe: Vec<u32> = subsets[t].iter().take(4).copied().collect();
            std::thread::spawn(move || -> u64 {
                let mut client = NetClient::connect(
                    TcpTransport::new(addr),
                    ClientConfig {
                        tenant: t as u32,
                        ..Default::default()
                    },
                )
                .expect("client connect");
                let mut rng = StdRng::seed_from_u64(500 + t as u64);
                let mut submitted = 0u64;
                for round in 0..ROUNDS {
                    let events: Vec<EdgeEvent> = (0..BATCH)
                        .map(|_| {
                            let u = rng.gen_range(0..n) as u32;
                            let v = rng.gen_range(0..n) as u32;
                            if rng.gen_range(0..5) == 0 {
                                EdgeEvent::delete(u, v)
                            } else {
                                EdgeEvent::insert(u, v)
                            }
                        })
                        .filter(|e| e.u != e.v)
                        .collect();
                    submitted += client.submit_events(events).expect("submit");
                    // Reads route to this writer's tenant; the client-side
                    // guards verify epoch monotonicity per reply.
                    let rows = client.get_rows(&probe).expect("rows");
                    assert_eq!(rows.dim, 8);
                    if round % 4 == 1 {
                        client.flush().expect("flush");
                    }
                }
                submitted
            })
        })
        .collect();
    let per_writer: Vec<u64> = writers
        .into_iter()
        .map(|h| h.join().expect("writer"))
        .collect();
    let total: u64 = per_writer.iter().sum();
    assert!(total > 0);

    // Per-tenant attribution: every event is charged to its submitting
    // tenant exactly; the host rollup sums to the global total.
    let mut drain = NetClient::connect(
        TcpTransport {
            addr: addr.to_string(),
            read_timeout: Some(Duration::from_secs(30)),
            nodelay: true,
        },
        ClientConfig::default(),
    )
    .expect("drain client");
    drain.flush().expect("final flush");
    let mut epochs = Vec::new();
    for (t, &wrote) in per_writer.iter().enumerate() {
        let mut c = NetClient::connect(
            TcpTransport::new(addr.to_string()),
            ClientConfig {
                tenant: t as u32,
                ..Default::default()
            },
        )
        .expect("stats client");
        let s = c.stats().expect("stats");
        assert_eq!(s.tenant.tenant, t as u32);
        assert_eq!(
            s.tenant.events_submitted, wrote,
            "tenant {t}: cross-tenant accounting leak"
        );
        assert_eq!(
            s.tenant.events_applied + s.tenant.events_coalesced,
            wrote,
            "tenant {t}: submitted events unaccounted for"
        );
        assert_eq!(s.tenant.events_pending, 0);
        assert_eq!(s.host.tenants, nt);
        assert_eq!(s.host.events_submitted, total);
        epochs.push(s.tenant.epoch);
        if t == 0 {
            assert_eq!(s.host.batches_recorded, s.tenant.epoch);
        }
    }
    // The shared stream advances all tenants in lockstep.
    assert!(epochs.windows(2).all(|w| w[0] == w[1]));
    drop(drain);

    // Per-tenant ground truth: each journal replays bitwise over that
    // tenant's own subset.
    let host = front.shutdown_host();
    assert_eq!(host.batches_recorded(), epochs[0]);
    for (t, subset) in subsets.iter().enumerate() {
        let t = t as TenantId;
        let log = host.window_log(t).expect("journal enabled").to_vec();
        assert_eq!(log.len() as u64, host.epoch(t).unwrap());
        let mut g = g0.clone();
        let mut pipe = TreeSvdPipeline::new(&g, subset, ppr_cfg(), tree_cfg());
        for window in &log {
            pipe.update(&mut g, window);
        }
        let diff = host
            .embedding(t)
            .unwrap()
            .left()
            .sub(&pipe.embedding().left())
            .max_abs();
        assert_eq!(diff, 0.0, "tenant {t}: TCP-served state diverged");
        assert_eq!(host.graph().num_edges(), g.num_edges());
    }
}
