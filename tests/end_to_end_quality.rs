//! End-to-end quality floors: on a well-separated synthetic graph, the full
//! Tree-SVD pipeline must actually solve the downstream tasks, and must
//! beat uninformative baselines. These are the "does the whole system work"
//! tests — every substrate (graph, PPR, proximity, SVD tree, eval) is on
//! the path.

use tree_svd::prelude::*;
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

fn clean_dataset() -> SyntheticDataset {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 1500;
    cfg.num_edges = 9000;
    cfg.num_classes = 4;
    cfg.tau = 3;
    cfg.p_intra = 0.85; // well-separated communities
    cfg.label_noise = 0.0;
    SyntheticDataset::generate(&cfg)
}

fn pipeline_on(data: &SyntheticDataset, subset: &[u32]) -> TreeSvdPipeline {
    let g = data.stream.snapshot(data.stream.num_snapshots());
    TreeSvdPipeline::new(
        &g,
        subset,
        PprConfig {
            alpha: 0.2,
            r_max: 5e-5,
        },
        TreeSvdConfig {
            dim: 16,
            branching: 4,
            num_blocks: 8,
            ..TreeSvdConfig::default()
        },
    )
}

#[test]
fn classification_beats_chance_by_a_wide_margin() {
    let data = clean_dataset();
    let subset = data.sample_subset(150, 3);
    let labels = data.subset_labels(&subset);
    let pipe = pipeline_on(&data, &subset);
    let task = NodeClassificationTask::new(&labels, 0.5, 1);
    let scores = task.evaluate(&pipe.embedding().left());
    // 4 balanced classes: chance ≈ 25%. Clean communities should be nearly
    // perfectly recoverable.
    assert!(scores.micro > 0.8, "micro-F1 {} too low", scores.micro);
    assert!(scores.macro_ > 0.75, "macro-F1 {} too low", scores.macro_);
}

#[test]
fn link_prediction_beats_random_scoring() {
    let data = clean_dataset();
    let subset = data.sample_subset(100, 4);
    let g = data.stream.snapshot(data.stream.num_snapshots());
    let task = LinkPredictionTask::from_graph(&g, &subset, 0.3, 5);
    assert!(task.num_positives() > 20, "need a meaningful test set");
    let pipe = TreeSvdPipeline::new(
        &task.train_graph,
        &subset,
        PprConfig {
            alpha: 0.2,
            r_max: 5e-5,
        },
        TreeSvdConfig {
            dim: 16,
            branching: 4,
            num_blocks: 8,
            ..TreeSvdConfig::default()
        },
    );
    let left = pipe.embedding().left();
    let right = pipe.embedding().right(&pipe.proximity_csr());
    let prec = task.precision(&left, &right);
    // Random scoring sits at 0.5 on a balanced pos/neg set.
    assert!(prec > 0.7, "precision {prec} barely above chance");
    // Sanity: a random embedding really does sit near 0.5.
    let mut rng = StdRng::seed_from_u64(9);
    let rl = DenseMatrix::from_fn(left.rows(), 16, |_, _| rng.gen_range(-1.0..1.0));
    let rr = DenseMatrix::from_fn(right.rows(), 16, |_, _| rng.gen_range(-1.0..1.0));
    let rand_prec = task.precision(&rl, &rr);
    assert!(prec > rand_prec + 0.15, "tree {prec} vs random {rand_prec}");
}

#[test]
fn embedding_is_deterministic_across_runs() {
    let data = clean_dataset();
    let subset = data.sample_subset(80, 5);
    let a = pipeline_on(&data, &subset);
    let b = pipeline_on(&data, &subset);
    let diff = a.embedding().left().sub(&b.embedding().left()).max_abs();
    assert_eq!(diff, 0.0, "same seeds must give identical embeddings");
}

#[test]
fn subset_rows_align_with_sources() {
    // Row i of the embedding must describe subset node i: check that a
    // node's own proximity row is the best match for its embedding via the
    // reconstruction X·Yᵀ ≈ M.
    let data = clean_dataset();
    let subset = data.sample_subset(60, 6);
    let pipe = pipeline_on(&data, &subset);
    let csr = pipe.proximity_csr();
    let x = pipe.embedding().left();
    let y = pipe.embedding().right(&csr);
    let approx = x.mul(&y.transpose());
    let dense = csr.to_dense();
    // Reconstruction correlates strongly with the true matrix.
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (a, b) in approx.as_slice().iter().zip(dense.as_slice()) {
        dot += a * b;
        na += a * a;
        nb += b * b;
    }
    let cosine = dot / (na.sqrt() * nb.sqrt());
    assert!(cosine > 0.9, "reconstruction cosine {cosine}");
}
