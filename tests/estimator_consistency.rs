//! Cross-estimator consistency: the three PPR estimator families (local
//! push, power iteration, Monte-Carlo walks) must agree on the same graph,
//! and the SVD kernels (Golub–Reinsch, Jacobi oracle, randomized, Lanczos)
//! must agree on the same proximity matrix — across crate boundaries, on a
//! realistic generated graph.

use tree_svd::datasets::DatasetConfig;
use tree_svd::graph::Direction;
use tree_svd::linalg::lanczos::{lanczos_svd_csr, LanczosConfig};
use tree_svd::linalg::randomized::randomized_svd;
use tree_svd::linalg::svd::exact_svd;
use tree_svd::linalg::RandomizedSvdConfig;
use tree_svd::ppr::exact::exact_ppr_row;
use tree_svd::ppr::monte_carlo::{monte_carlo_ppr, MonteCarloConfig};
use tree_svd::ppr::{forward_push_fresh, PprConfig, SubsetPpr};
use tree_svd::prelude::*;

fn small_graph() -> (SyntheticDataset, DynGraph) {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 400;
    cfg.num_edges = 2000;
    cfg.tau = 2;
    let ds = SyntheticDataset::generate(&cfg);
    let g = ds.stream.snapshot(2);
    (ds, g)
}

#[test]
fn three_ppr_estimators_agree() {
    let (_, g) = small_graph();
    let alpha = 0.2;
    for source in [0u32, 17, 99] {
        let exact = exact_ppr_row(&g, Direction::Out, source, alpha, 1e-13);
        let push = forward_push_fresh(&g, Direction::Out, alpha, 1e-8, source);
        let mc = monte_carlo_ppr(
            &g,
            Direction::Out,
            source,
            &MonteCarloConfig {
                alpha,
                num_walks: 150_000,
                seed: 3,
            },
        );
        for u in 0..g.num_nodes() as u32 {
            let truth = exact[u as usize];
            assert!(
                (push.estimate(u) - truth).abs() < 1e-4,
                "push vs exact at ({source},{u})"
            );
            assert!(
                (mc.estimate(u) - truth).abs() < 6e-3,
                "MC vs exact at ({source},{u}): {} vs {truth}",
                mc.estimate(u)
            );
        }
    }
}

#[test]
fn four_svd_kernels_agree_on_proximity_matrix() {
    let (ds, g) = small_graph();
    let subset = ds.sample_subset(40, 1);
    let ppr = SubsetPpr::build(
        &g,
        &subset,
        PprConfig {
            alpha: 0.2,
            r_max: 1e-4,
        },
    );
    let m = CsrMatrix::from_rows(g.num_nodes(), &ppr.proximity_rows());
    let d = 8;

    let exact = exact_svd(&m.to_dense());
    let rand = randomized_svd(
        &m,
        &RandomizedSvdConfig {
            rank: d,
            oversample: 10,
            power_iters: 3,
        },
        &mut <tsvd_rt::rng::StdRng as tsvd_rt::rng::SeedableRng>::seed_from_u64(1),
    );
    let lanczos = lanczos_svd_csr(
        &m,
        &LanczosConfig {
            rank: d,
            extra_steps: 20,
        },
    );

    for j in 0..d {
        let truth = exact.s[j];
        assert!(
            (rand.s[j] - truth).abs() < 0.02 * exact.s[0],
            "randomized σ_{j}: {} vs {truth}",
            rand.s[j]
        );
        assert!(
            (lanczos.s[j] - truth).abs() < 0.01 * exact.s[0],
            "lanczos σ_{j}: {} vs {truth}",
            lanczos.s[j]
        );
    }
}

#[test]
fn lp_metrics_are_mutually_consistent() {
    // Precision@|pos|, AUC, and MAP must all rank a good embedding above a
    // random one on the same task.
    let (ds, g) = small_graph();
    let subset = ds.sample_subset(60, 2);
    let task = LinkPredictionTask::from_graph(&g, &subset, 0.3, 7);
    assert!(task.num_positives() > 10);
    let pipe = TreeSvdPipeline::new(
        &task.train_graph,
        &subset,
        PprConfig {
            alpha: 0.2,
            r_max: 5e-5,
        },
        TreeSvdConfig {
            dim: 16,
            num_blocks: 8,
            ..Default::default()
        },
    );
    let left = pipe.embedding().left();
    let right = pipe.embedding().right(&pipe.proximity_csr());
    use tsvd_rt::rng::{Rng, SeedableRng};
    let mut rng = tsvd_rt::rng::StdRng::seed_from_u64(9);
    let rl = DenseMatrix::from_fn(left.rows(), 16, |_, _| rng.gen_range(-1.0..1.0));
    let rr = DenseMatrix::from_fn(right.rows(), 16, |_, _| rng.gen_range(-1.0..1.0));
    assert!(task.precision(&left, &right) > task.precision(&rl, &rr));
    assert!(task.auc(&left, &right) > task.auc(&rl, &rr));
    assert!(task.average_precision(&left, &right) > task.average_precision(&rl, &rr));
    // precision_at with k = |pos| equals the headline precision.
    let k = task.num_positives();
    assert!((task.precision_at(&left, &right, k) - task.precision(&left, &right)).abs() < 1e-12);
}
