//! Serving-layer integration tests — the PR's acceptance criteria:
//!
//! 1. the sharded server's final embedding is **bitwise identical** to an
//!    offline single-pipeline replay of the same flushed windows, at any
//!    shard count `R` and submission granularity;
//! 2. concurrent readers only ever observe whole-epoch snapshots — never a
//!    torn mix of two epochs — while flushes race underneath them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tree_svd::prelude::*;
use tsvd_rt::rng::{Rng, SeedableRng, StdRng};

fn small_dataset() -> SyntheticDataset {
    let mut cfg = DatasetConfig::youtube();
    cfg.num_nodes = 500;
    cfg.num_edges = 2500;
    cfg.tau = 4;
    SyntheticDataset::generate(&cfg)
}

fn tree_cfg() -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 16,
        branching: 4,
        num_blocks: 8,
        policy: UpdatePolicy::Lazy { delta: 0.5 },
        ..TreeSvdConfig::default()
    }
}

fn ppr_cfg() -> PprConfig {
    PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    }
}

/// Split `events` into chunks with randomized lengths in `1..max_chunk`.
fn random_chunks(events: &[EdgeEvent], seed: u64, max_chunk: usize) -> Vec<Vec<EdgeEvent>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chunks = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let len = rng.gen_range(1..max_chunk).min(events.len() - i);
        chunks.push(events[i..i + len].to_vec());
        i += len;
    }
    chunks
}

/// Drive a server with explicit `flush_sync` window boundaries and compare
/// bitwise against an offline pipeline replaying the identical coalesced
/// windows — for several shard counts over the same randomized chunking.
#[test]
fn server_final_embedding_bitwise_equals_offline_replay() {
    let data = small_dataset();
    let subset = data.sample_subset(48, 5);
    let g0 = data.stream.snapshot(1);
    let mut events = Vec::new();
    for t in 2..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    let chunks = random_chunks(&events, 99, 120);
    assert!(chunks.len() >= 3, "want several flush windows");

    // Offline ground truth: one unsharded pipeline replaying the same
    // last-write-wins-coalesced windows the server will flush.
    let mut g = g0.clone();
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg(), tree_cfg());
    for chunk in &chunks {
        let window = tree_svd_coalesce(chunk);
        pipe.update(&mut g, &window);
    }

    for num_shards in [1usize, 3] {
        let engine = ShardedEngine::new(&g0, &subset, num_shards, ppr_cfg(), tree_cfg());
        let server = EmbeddingServer::start(
            engine,
            ServeConfig {
                num_shards,
                flush_max_events: usize::MAX,
                flush_interval_ms: 60_000,
                coalesce: true,
                ..Default::default()
            },
        );
        for (i, chunk) in chunks.iter().enumerate() {
            assert!(server.submit_batch(chunk.clone()));
            assert_eq!(server.flush_sync(), (i + 1) as u64);
        }
        let reader = server.reader();
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), chunks.len() as u64);
        assert!(snap.verify());
        let engine = server.shutdown();
        let diff = engine
            .embedding()
            .left()
            .sub(&pipe.embedding().left())
            .max_abs();
        assert_eq!(
            diff, 0.0,
            "R={num_shards}: served embedding diverged from offline replay"
        );
        assert_eq!(engine.embedding().sigma, pipe.embedding().sigma);
        // The published snapshot is the same epoch the engine ended on.
        let served = snap.tagged().left().sub(&engine.embedding().left());
        assert_eq!(served.max_abs(), 0.0, "snapshot lags the engine");
        assert_eq!(engine.graph().num_edges(), g.num_edges());
    }
}

fn tree_svd_coalesce(chunk: &[EdgeEvent]) -> Vec<EdgeEvent> {
    tree_svd::graph::coalesce(chunk)
}

/// Same equivalence through the *count trigger*: the server decides the
/// window boundaries itself (pending ≥ `flush_max_events` at message
/// granularity); the test simulates the identical batching rule offline.
#[test]
fn count_triggered_windows_bitwise_equal_offline_replay() {
    let data = small_dataset();
    let subset = data.sample_subset(40, 8);
    let g0 = data.stream.snapshot(1);
    let mut events = Vec::new();
    for t in 2..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    events.truncate(900);
    let chunks = random_chunks(&events, 7, 30);
    let flush_max = 150usize;

    // Offline simulation of the server's batcher: accumulate submission
    // chunks, flush (coalesced) whenever the pending window reaches
    // `flush_max`, plus one final drain — exactly what the reactor does
    // when its deadline timer never fires.
    let mut g = g0.clone();
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg(), tree_cfg());
    let mut pending: Vec<EdgeEvent> = Vec::new();
    let mut windows = 0u64;
    for chunk in &chunks {
        pending.extend_from_slice(chunk);
        if pending.len() >= flush_max {
            let window = tree_svd_coalesce(&pending);
            pending.clear();
            pipe.update(&mut g, &window);
            windows += 1;
        }
    }
    if !pending.is_empty() {
        pipe.update(&mut g, &tree_svd_coalesce(&pending));
        windows += 1;
    }
    assert!(windows >= 3, "want several count-triggered windows");

    let engine = ShardedEngine::new(&g0, &subset, 3, ppr_cfg(), tree_cfg());
    let server = EmbeddingServer::start(
        engine,
        ServeConfig {
            num_shards: 3,
            flush_max_events: flush_max,
            flush_interval_ms: 3_600_000, // deadline never fires
            coalesce: true,
            ..Default::default()
        },
    );
    for chunk in &chunks {
        assert!(server.submit_batch(chunk.clone()));
    }
    let final_epoch = server.flush_sync(); // drain the partial tail window
    assert_eq!(final_epoch, windows, "window boundaries diverged");
    let engine = server.shutdown();
    let diff = engine
        .embedding()
        .left()
        .sub(&pipe.embedding().left())
        .max_abs();
    assert_eq!(diff, 0.0, "count-triggered serving diverged from replay");
}

/// The pipelined-flush acceptance criterion: at every `(depth, R)` in
/// `{0, 1} × {1, 3}` the server produces the **bitwise identical**
/// embedding — equal to the offline replay of its own window journal and
/// equal across all combinations. Windows are count-triggered (message
/// granularity), so every run flushes the same boundaries; the run ends in
/// `shutdown` with a staged tail window, which exercises the drain path.
#[test]
fn pipelined_serving_bitwise_equals_serial_at_any_depth_and_shard_count() {
    let data = small_dataset();
    let subset = data.sample_subset(40, 11);
    let g0 = data.stream.snapshot(1);
    let mut events = Vec::new();
    for t in 2..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    events.truncate(800);
    let chunks = random_chunks(&events, 21, 40);
    let flush_max = 120usize;

    let mut reference: Option<(DenseMatrix, u64)> = None;
    for depth in [0usize, 1] {
        for num_shards in [1usize, 3] {
            let mut engine = ShardedEngine::new(&g0, &subset, num_shards, ppr_cfg(), tree_cfg());
            engine.enable_window_log();
            let server = EmbeddingServer::start(
                engine,
                ServeConfig {
                    num_shards,
                    flush_max_events: flush_max,
                    flush_interval_ms: 3_600_000, // count-triggered only
                    coalesce: true,
                    pipeline_depth: depth,
                    ..Default::default()
                },
            );
            for chunk in &chunks {
                assert!(server.submit_batch(chunk.clone()));
            }
            let stats = server.stats();
            assert_eq!(stats.pipeline_depth, depth);
            if depth == 0 {
                assert_eq!(stats.overlapped_secs, 0.0, "overlap at depth 0");
                assert_eq!(stats.windows_inflight, 0, "in-flight window at depth 0");
            }
            // No flush_sync: shutdown drains the staged tail window itself.
            let engine = server.shutdown();
            assert!(engine.epoch() >= 4, "want several windows");

            // Ground truth: replay this run's own journal offline.
            let log = engine.window_log().expect("journal enabled").to_vec();
            assert_eq!(log.len() as u64, engine.epoch());
            let mut g = g0.clone();
            let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg(), tree_cfg());
            for window in &log {
                pipe.update(&mut g, window);
            }
            let left = engine.embedding().left();
            assert_eq!(
                left.sub(&pipe.embedding().left()).max_abs(),
                0.0,
                "depth={depth} R={num_shards}: diverged from offline replay"
            );
            match &reference {
                None => reference = Some((left, engine.epoch())),
                Some((ref_left, ref_epoch)) => {
                    assert_eq!(
                        engine.epoch(),
                        *ref_epoch,
                        "depth={depth} R={num_shards}: window boundaries diverged"
                    );
                    assert_eq!(
                        left.sub(ref_left).max_abs(),
                        0.0,
                        "depth={depth} R={num_shards}: diverged across configurations"
                    );
                }
            }
        }
    }
}

/// `flush_sync` racing an in-flight pipelined window must block until that
/// window is published: after every ack the served epoch covers everything
/// submitted, with zero pending events and nothing left in flight.
#[test]
fn flush_sync_drains_inflight_pipelined_windows() {
    let data = small_dataset();
    let subset = data.sample_subset(24, 17);
    let g0 = data.stream.snapshot(1);
    let mut events = Vec::new();
    for t in 2..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    events.truncate(120);

    let mut engine = ShardedEngine::new(&g0, &subset, 2, ppr_cfg(), tree_cfg());
    engine.enable_window_log();
    let server = EmbeddingServer::start(
        engine,
        ServeConfig {
            num_shards: 2,
            // Every submission is its own window: maximal staging/commit
            // churn, so flush_sync keeps racing a window in flight.
            flush_max_events: 1,
            flush_interval_ms: 3_600_000,
            coalesce: true,
            pipeline_depth: 1,
            ..Default::default()
        },
    );
    let mut submitted = 0u64;
    for (i, chunk) in events.chunks(3).enumerate() {
        submitted += chunk.len() as u64;
        assert!(server.submit_batch(chunk.to_vec()));
        if i % 4 == 3 {
            server.flush_sync();
            let stats = server.stats();
            assert_eq!(stats.events_pending, 0, "flush_sync left events behind");
            assert_eq!(
                stats.windows_inflight, 0,
                "flush_sync left a window in flight"
            );
            assert_eq!(stats.epoch, stats.batches_flushed);
            assert_eq!(stats.events_applied + stats.events_coalesced, submitted);
        }
    }
    // End on unflushed submissions: shutdown's own drain finishes the job.
    let engine = server.shutdown();
    let log = engine.window_log().unwrap().to_vec();
    assert_eq!(log.iter().map(|w| w.len() as u64).sum::<u64>(), submitted);
    let mut g = g0.clone();
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg(), tree_cfg());
    for window in &log {
        pipe.update(&mut g, window);
    }
    assert_eq!(
        engine
            .embedding()
            .left()
            .sub(&pipe.embedding().left())
            .max_abs(),
        0.0,
        "flush_sync-raced serving diverged from offline replay"
    );
}

/// Readers hammering the cell while the server flushes must only ever see
/// internally consistent whole-epoch snapshots, with monotone epochs.
#[test]
fn concurrent_readers_never_observe_torn_epochs() {
    let data = small_dataset();
    let subset = data.sample_subset(32, 3);
    let g0 = data.stream.snapshot(1);
    let mut events = Vec::new();
    for t in 2..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    events.truncate(600);

    let engine = ShardedEngine::new(&g0, &subset, 2, ppr_cfg(), tree_cfg());
    let dim = tree_cfg().dim;
    let server = EmbeddingServer::start(
        engine,
        ServeConfig {
            num_shards: 2,
            flush_max_events: 48,
            flush_interval_ms: 1,
            coalesce: true,
            ..Default::default()
        },
    );
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let reader = server.reader();
            let stop = stop.clone();
            let subset = subset.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut loads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    // Whole-epoch consistency: the checksum stamped at
                    // publish time must match the contents bitwise.
                    assert!(snap.verify(), "torn snapshot at epoch {}", snap.epoch());
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} -> {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    let v = snap.get(subset[0]).expect("subset node missing");
                    assert_eq!(v.len(), dim);
                    assert!(v.iter().all(|x| x.is_finite()));
                    loads += 1;
                }
                loads
            })
        })
        .collect();

    for chunk in events.chunks(13) {
        assert!(server.submit_batch(chunk.to_vec()));
        std::thread::sleep(Duration::from_micros(300));
    }
    let final_epoch = server.flush_sync();
    assert!(final_epoch >= 5, "expected many flushes, got {final_epoch}");
    // Let readers observe the final epoch before stopping them.
    assert!(server
        .reader()
        .wait_for_epoch(final_epoch, Duration::from_secs(10)));
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let loads = r.join().expect("reader panicked (torn read?)");
        assert!(loads > 0, "reader never loaded a snapshot");
    }
    let stats = server.stats();
    assert_eq!(stats.epoch, final_epoch);
    assert_eq!(stats.events_pending, 0);
    assert_eq!(
        stats.events_submitted,
        stats.events_applied + stats.events_coalesced
    );
    server.shutdown();
}
