//! Cross-crate integration tests: the dynamic pipeline must agree with
//! from-scratch reconstruction at every snapshot.

use tree_svd::prelude::*;
use tsvd_rt::rng::StdRng;
use tsvd_rt::rng::{Rng, SeedableRng};

fn small_dataset() -> SyntheticDataset {
    let mut cfg = DatasetConfig::youtube();
    cfg.num_nodes = 600;
    cfg.num_edges = 3000;
    cfg.tau = 5;
    SyntheticDataset::generate(&cfg)
}

fn tree_cfg(policy: UpdatePolicy) -> TreeSvdConfig {
    TreeSvdConfig {
        dim: 16,
        branching: 4,
        num_blocks: 8,
        policy,
        ..TreeSvdConfig::default()
    }
}

#[test]
fn eager_dynamic_pipeline_equals_fresh_factorisation_every_snapshot() {
    let data = small_dataset();
    let subset = data.sample_subset(60, 5);
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let cfg = tree_cfg(UpdatePolicy::ChangedOnly);
    let mut g = data.stream.snapshot(1);
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg, cfg);
    let static_tree = TreeSvd::new(cfg);
    for t in 2..=data.stream.num_snapshots() {
        pipe.update(&mut g, data.stream.batch(t));
        // With ChangedOnly every dirty block is re-factorised with the same
        // deterministic per-block seed, so the dynamic embedding must equal
        // a fresh Tree-SVD of the maintained matrix bit-for-bit.
        let fresh = static_tree.embed(pipe.matrix());
        let diff = pipe.embedding().left().sub(&fresh.left()).max_abs();
        assert!(diff < 1e-12, "snapshot {t}: dynamic vs fresh diff {diff}");
    }
}

#[test]
fn dynamic_ppr_maintenance_matches_from_scratch_proximity() {
    let data = small_dataset();
    let subset = data.sample_subset(40, 6);
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let cfg = tree_cfg(UpdatePolicy::Lazy { delta: 0.65 });
    let mut g = data.stream.snapshot(1);
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg, cfg);
    for t in 2..=data.stream.num_snapshots() {
        pipe.update(&mut g, data.stream.batch(t));
    }
    // Rebuild the proximity matrix from scratch on the final graph and
    // compare Frobenius norms: the incrementally maintained matrix must be
    // within push-tolerance of the fresh one.
    let final_graph = data.stream.snapshot(data.stream.num_snapshots());
    let fresh_ppr = SubsetPpr::build(&final_graph, &subset, ppr_cfg);
    let fresh = CsrMatrix::from_rows(final_graph.num_nodes(), &fresh_ppr.proximity_rows());
    let maintained = pipe.proximity_csr();
    let denom = fresh.frobenius_norm().max(1.0);
    let diff = maintained
        .to_dense()
        .sub(&fresh.to_dense())
        .frobenius_norm();
    assert!(
        diff / denom < 0.25,
        "relative proximity drift {}",
        diff / denom
    );
    // And the dynamic embedding's projection quality matches a fresh one.
    let dyn_resid = pipe.embedding().projection_residual(&maintained);
    let fresh_emb = TreeSvd::new(cfg).embed(pipe.matrix());
    let fresh_resid = fresh_emb.projection_residual(&maintained);
    assert!(
        dyn_resid <= fresh_resid + 0.7 * maintained.frobenius_norm(),
        "lazy residual {dyn_resid} vs fresh {fresh_resid}"
    );
}

#[test]
fn lazy_update_never_worse_than_delta_guarantee() {
    // Empirical Theorem 3.6: after a stream of updates, for each cached
    // block the invariant ‖(B_cached)_d − B_now‖_F ≤ √2·δ·‖B_now‖_F + slack
    // holds (the slack being the level-1 randomized SVD's ε).
    let data = small_dataset();
    let subset = data.sample_subset(50, 7);
    let delta = 0.5;
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let cfg = tree_cfg(UpdatePolicy::Lazy { delta });
    let mut g = data.stream.snapshot(1);
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg, cfg);
    for t in 2..=data.stream.num_snapshots() {
        pipe.update(&mut g, data.stream.batch(t));
    }
    // The lazy rule is enforced inside DynamicTreeSvd; verify its external
    // consequence — overall reconstruction stays within the theorem's
    // ballpark: ‖M − UUᵀM‖ ≤ ((1+δ√2)(1+√2)^{q−1} − 1)·‖M‖.
    let csr = pipe.proximity_csr();
    let resid = pipe.embedding().projection_residual(&csr);
    let q = cfg.levels() as i32;
    let bound = ((1.0 + delta * std::f64::consts::SQRT_2)
        * (1.0 + std::f64::consts::SQRT_2).powi(q - 1)
        - 1.0)
        * csr.frobenius_norm();
    assert!(
        resid <= bound,
        "residual {resid} exceeds Theorem 3.6 bound {bound}"
    );
}

#[test]
fn delete_heavy_stream_stays_consistent() {
    // A stream that deletes most of what it inserts: exercises the
    // deletion paths of the dynamic PPR and the norm bookkeeping.
    let mut rng = StdRng::seed_from_u64(11);
    let n = 200usize;
    let mut g = DynGraph::with_nodes(n);
    let mut edges = Vec::new();
    while g.num_edges() < 800 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v && g.insert_edge(u, v) {
            edges.push((u, v));
        }
    }
    let subset: Vec<u32> = (0..30).collect();
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let cfg = tree_cfg(UpdatePolicy::ChangedOnly);
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg, cfg);
    // Delete half the edges, insert a few new ones, in interleaved batches.
    for chunk in 0..5 {
        let mut events = Vec::new();
        for i in 0..80 {
            let idx = chunk * 80 + i;
            if idx < edges.len() && idx % 2 == 0 {
                events.push(EdgeEvent::delete(edges[idx].0, edges[idx].1));
            }
            if i % 10 == 0 {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if u != v {
                    events.push(EdgeEvent::insert(u, v));
                }
            }
        }
        pipe.update(&mut g, &events);
        let x = pipe.embedding().left();
        assert!(
            x.is_finite(),
            "non-finite embedding after delete-heavy batch {chunk}"
        );
    }
    // Final equivalence with a fresh factorisation.
    let fresh = TreeSvd::new(cfg).embed(pipe.matrix());
    let diff = pipe.embedding().left().sub(&fresh.left()).max_abs();
    assert!(diff < 1e-10, "dynamic vs fresh after deletes: {diff}");
}
