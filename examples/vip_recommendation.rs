//! The paper's motivating scenario: an IT company wants better
//! recommendations for a set of VIP users. We embed only the VIP subset
//! (with the whole graph as context), hold out 30% of their outgoing edges,
//! and rank candidate targets by embedding dot products — comparing the
//! subset embedding against a budget-equalised *global* embedding to show
//! why subset embedding wins (Table 1's mechanism).
//!
//! ```sh
//! cargo run --release --example vip_recommendation
//! ```

use tree_svd::baselines::GlobalStrap;
use tree_svd::datasets::DatasetConfig;
use tree_svd::prelude::*;

fn main() {
    // A YouTube-like social graph, scaled down further for a fast example.
    let mut cfg = DatasetConfig::youtube();
    cfg.num_nodes = 3000;
    cfg.num_edges = 12_000;
    let data = SyntheticDataset::generate(&cfg);
    let g = data.stream.snapshot(data.stream.num_snapshots());
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // 120 random VIP users.
    let vips = data.sample_subset(120, 42);
    println!("VIP subset: {} users", vips.len());

    // Hold out 30% of VIP outgoing edges as the recommendation test set.
    let task = LinkPredictionTask::from_graph(&g, &vips, 0.3, 7);
    println!("held-out VIP edges: {}", task.num_positives());

    // --- Subset embedding (Tree-SVD) on the training graph ---
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let tree_cfg = TreeSvdConfig {
        dim: 32,
        branching: 4,
        num_blocks: 16,
        ..TreeSvdConfig::default()
    };
    let pipeline = TreeSvdPipeline::new(&task.train_graph, &vips, ppr_cfg, tree_cfg);
    let left = pipeline.embedding().left();
    let right = pipeline.embedding().right(&pipeline.proximity_csr());
    let subset_precision = task.precision(&left, &right);

    // --- Global embedding under the same total memory budget ---
    let global = GlobalStrap::new(32, 42).embed(&task.train_graph, &vips, 0.2, 2e-5);
    let global_precision = task.precision(
        &global.left,
        global.right.as_ref().expect("right embedding"),
    );

    println!("\nrecommendation precision@{}:", task.num_positives());
    println!(
        "  Tree-SVD subset embedding : {:.1}%",
        subset_precision * 100.0
    );
    println!(
        "  budget-equalised global   : {:.1}%",
        global_precision * 100.0
    );
    println!(
        "\nfocusing the budget on the VIP rows {} the global embedding.",
        if subset_precision > global_precision {
            "beats"
        } else {
            "ties"
        }
    );
}
