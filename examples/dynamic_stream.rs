//! Maintain a subset embedding over a live edge stream and compare the
//! lazy dynamic algorithm against rebuilding from scratch — the headline
//! trade-off of the paper (order-of-magnitude cheaper updates, near-static
//! quality).
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use std::time::Instant;
use tree_svd::datasets::DatasetConfig;
use tree_svd::prelude::*;

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 5000;
    cfg.num_edges = 25_000;
    cfg.tau = 6;
    let data = SyntheticDataset::generate(&cfg);

    // Start at the middle snapshot; stream the rest in batches of 400.
    let t_mid = 3;
    let mut g = data.stream.snapshot(t_mid);
    let subset = data.sample_subset(200, 9);
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let tree_cfg = TreeSvdConfig {
        dim: 32,
        branching: 4,
        num_blocks: 16,
        policy: UpdatePolicy::Lazy { delta: 0.65 },
        ..TreeSvdConfig::default()
    };
    let mut pipeline = TreeSvdPipeline::new(&g, &subset, ppr_cfg, tree_cfg);
    let static_tree = TreeSvd::new(tree_cfg);

    let mut events = Vec::new();
    for t in (t_mid + 1)..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    println!(
        "streaming {} events in batches of 400 over a {}-edge graph\n",
        events.len(),
        g.num_edges()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>10} {:>14}",
        "batch", "ppr-refresh", "lazy-svd", "full-rebuild", "speedup", "blocks-redone"
    );

    // The PPR/proximity refresh is shared by every factorisation strategy;
    // the comparison that matters is lazy Algorithm 4 vs a full Tree-SVD
    // re-factorisation of the same refreshed matrix.
    let (mut ppr_total, mut lazy_total, mut rebuild_total) = (0.0, 0.0, 0.0);
    for (bi, batch) in events.chunks(400).enumerate() {
        let t0 = Instant::now();
        pipeline.apply_events(&mut g, batch);
        let ppr = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let stats = pipeline.refresh_embedding();
        let lazy = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        let _full = static_tree.embed(pipeline.matrix());
        let rebuild = t2.elapsed().as_secs_f64();
        ppr_total += ppr;
        lazy_total += lazy;
        rebuild_total += rebuild;
        println!(
            "{:>6} {:>10.1}ms {:>10.1}ms {:>12.1}ms {:>9.1}x {:>8}/{}",
            bi + 1,
            ppr * 1e3,
            lazy * 1e3,
            rebuild * 1e3,
            rebuild / lazy.max(1e-9),
            stats.blocks_recomputed,
            stats.blocks_total,
        );
    }
    println!(
        "\ntotals: shared PPR {:.2}s | lazy SVD {:.2}s vs rebuild SVD {:.2}s ({:.1}x cheaper)",
        ppr_total,
        lazy_total,
        rebuild_total,
        rebuild_total / lazy_total.max(1e-9)
    );

    // Quality check: the lazily maintained embedding projects the current
    // proximity matrix almost as well as a fresh factorisation.
    let csr = pipeline.proximity_csr();
    let lazy_resid = pipeline.embedding().projection_residual(&csr);
    let fresh_resid = static_tree
        .embed(pipeline.matrix())
        .projection_residual(&csr);
    println!(
        "projection residual: lazy {:.2} vs fresh {:.2} (‖M‖_F = {:.2})",
        lazy_resid,
        fresh_resid,
        csr.frobenius_norm()
    );
}
