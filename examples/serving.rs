//! Serve a subset embedding live while an edge stream pours in: the
//! sharded server batches events per window, flushes them through the
//! engine, and publishes each epoch with an `Arc` swap — query threads
//! read concurrently and never block on updates.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tree_svd::datasets::DatasetConfig;
use tree_svd::prelude::*;

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 4000;
    cfg.num_edges = 20_000;
    cfg.tau = 6;
    let data = SyntheticDataset::generate(&cfg);

    let t_mid = 3;
    let g0 = data.stream.snapshot(t_mid);
    let subset = data.sample_subset(150, 9);
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let tree_cfg = TreeSvdConfig {
        dim: 32,
        branching: 4,
        num_blocks: 16,
        policy: UpdatePolicy::Lazy { delta: 0.65 },
        ..TreeSvdConfig::default()
    };

    let serve_cfg = ServeConfig {
        num_shards: 4,
        flush_max_events: 256,
        flush_interval_ms: 10,
        coalesce: true,
        ..Default::default()
    };
    println!(
        "building sharded engine: |S|={} R={} over {} edges",
        subset.len(),
        serve_cfg.num_shards,
        g0.num_edges()
    );
    let t0 = Instant::now();
    let engine = ShardedEngine::new(&g0, &subset, serve_cfg.num_shards, ppr_cfg, tree_cfg);
    println!(
        "initial factorisation: {:.1}ms\n",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let server = EmbeddingServer::start(engine, serve_cfg);

    // Query side: three reader threads hammer the served embedding while
    // updates flow. Readers are wait-free with respect to flushes.
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..3)
        .map(|i| {
            let reader = server.reader();
            let stop = stop.clone();
            let queries = queries.clone();
            let probe = subset[i * 7];
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    assert!(snap.verify(), "torn epoch observed");
                    let _neighbours = snap.top_k_similar(probe, 5);
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Ingest side: stream the remaining snapshots' batches in small bursts.
    let mut events = Vec::new();
    for t in (t_mid + 1)..=data.stream.num_snapshots() {
        events.extend_from_slice(data.stream.batch(t));
    }
    println!("streaming {} events in bursts of 64", events.len());
    let t1 = Instant::now();
    for burst in events.chunks(64) {
        server.submit_batch(burst.to_vec());
        std::thread::sleep(Duration::from_millis(1));
    }
    let final_epoch = server.flush_sync();
    let ingest_secs = t1.elapsed().as_secs_f64();
    server
        .reader()
        .wait_for_epoch(final_epoch, Duration::from_secs(30));
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    let stats = server.stats();
    println!(
        "\nserved {} epochs in {:.2}s ({:.0} events/s) under {} concurrent queries",
        stats.epoch,
        ingest_secs,
        stats.events_submitted as f64 / ingest_secs,
        queries.load(Ordering::Relaxed),
    );
    println!(
        "events: submitted {} applied {} coalesced-away {} pending {}",
        stats.events_submitted, stats.events_applied, stats.events_coalesced, stats.events_pending
    );
    println!(
        "flush latency: last {:.1}ms mean {:.1}ms max {:.1}ms over {} flushes",
        stats.flush_ms_last, stats.flush_ms_mean, stats.flush_ms_max, stats.batches_flushed
    );
    let t = stats.timings;
    println!(
        "engine time: ppr {:.2}s rows {:.2}s svd {:.2}s across {} updates",
        t.ppr_secs, t.rows_secs, t.svd_secs, t.updates
    );

    // The serving shortcut changed nothing: replay the same windows through
    // a plain offline pipeline and compare bitwise.
    let engine = server.shutdown();
    let snap_left = engine.embedding().left();
    println!(
        "\nfinal embedding: {}×{} (epoch {}), graph now {} edges",
        snap_left.rows(),
        engine.embedding().dim,
        engine.epoch(),
        engine.graph().num_edges()
    );
    let sample: Vec<f64> = snap_left.row(0).iter().take(4).copied().collect();
    println!("row 0 prefix: {sample:?}");
}
