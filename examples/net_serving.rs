//! Serve a subset embedding over TCP: a `NetFront` accepts real socket
//! connections, client threads submit edge events and read rows through
//! `NetClient` (pipelined), and every reply carries the epoch + content
//! checksum so staleness and torn reads are detectable client-side.
//!
//! ```sh
//! cargo run --release --example net_serving
//! ```

use std::time::Instant;

use tree_svd::datasets::DatasetConfig;
use tree_svd::prelude::*;
use tree_svd::serve::net::Request;

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 3000;
    cfg.num_edges = 15_000;
    cfg.tau = 4;
    let data = SyntheticDataset::generate(&cfg);

    let g0 = data.stream.snapshot(2);
    let subset = data.sample_subset(100, 9);
    let tree_cfg = TreeSvdConfig {
        dim: 16,
        num_blocks: 8,
        ..TreeSvdConfig::default()
    };
    let serve_cfg = ServeConfig {
        num_shards: 4,
        flush_max_events: 128,
        flush_interval_ms: 10,
        coalesce: true,
        ..Default::default()
    };

    println!(
        "building sharded engine: |S|={} R={} over {} edges",
        subset.len(),
        serve_cfg.num_shards,
        g0.num_edges()
    );
    let t0 = Instant::now();
    let engine = ShardedEngine::new(
        &g0,
        &subset,
        serve_cfg.num_shards,
        PprConfig::default(),
        tree_cfg,
    );
    println!(
        "initial factorisation: {:.1}ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Network front: OS-assigned port on localhost.
    let front = NetFront::start(EmbeddingServer::start(engine, serve_cfg));
    let addr = front.listen("127.0.0.1:0").expect("bind");
    println!("serving on tcp://{addr}\n");

    // Writer client: streams the dataset's next batches over the socket.
    let writer = {
        let addr = addr.to_string();
        let events: Vec<EdgeEvent> = (3..=data.stream.num_snapshots())
            .flat_map(|t| data.stream.batch(t).to_vec())
            .take(2000)
            .collect();
        std::thread::spawn(move || {
            let mut client =
                NetClient::connect(TcpTransport::new(addr), ClientConfig::default()).unwrap();
            let mut sent = 0u64;
            for chunk in events.chunks(100) {
                sent += client.submit_events(chunk.to_vec()).unwrap();
            }
            let epoch = client.flush().unwrap();
            (sent, epoch)
        })
    };

    // Reader clients: pipelined row reads racing the writer's flushes.
    let probes: Vec<u32> = subset.iter().take(4).copied().collect();
    let readers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.to_string();
            let probes = probes.clone();
            std::thread::spawn(move || {
                let mut client =
                    NetClient::connect(TcpTransport::new(addr), ClientConfig::default()).unwrap();
                let batch: Vec<Request> =
                    (0..8).map(|_| Request::GetRows(probes.clone())).collect();
                let mut reads = 0usize;
                for _ in 0..50 {
                    reads += client.pipeline(&batch).unwrap().len();
                }
                println!(
                    "reader {i}: {reads} pipelined reads, final epoch {}",
                    client.last_epoch()
                );
                reads
            })
        })
        .collect();

    let (sent, epoch) = writer.join().unwrap();
    println!("writer: {sent} events submitted, flushed to epoch {epoch}");
    for r in readers {
        r.join().unwrap();
    }

    // Tail check over the wire, then a clean shutdown reclaiming the engine.
    let mut tail =
        NetClient::connect(TcpTransport::new(addr.to_string()), ClientConfig::default()).unwrap();
    let stats = tail.stats().unwrap();
    println!(
        "\nstats: epoch {} | submitted {} applied {} coalesced {} pending {} | flush mean {:.2}ms",
        stats.tenant.epoch,
        stats.tenant.events_submitted,
        stats.tenant.events_applied,
        stats.tenant.events_coalesced,
        stats.tenant.events_pending,
        stats.tenant.flush_ms_mean
    );
    println!(
        "host: {} tenant(s), {} batches recorded once on the shared graph",
        stats.host.tenants, stats.host.batches_recorded
    );
    let emb = tail.get_embedding().unwrap();
    assert!(emb.verify_checksum());
    println!(
        "embedding over the wire: {} rows × {} dims, checksum verified",
        emb.sources.len(),
        emb.dim
    );
    drop(tail);

    let engine = front.shutdown();
    println!(
        "front stopped; engine reclaimed at epoch {}",
        engine.epoch()
    );
}
