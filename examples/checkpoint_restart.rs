//! Checkpoint / restart: persist the full pipeline state between runs so a
//! periodically-scheduled embedding job never pays the static rebuild cost
//! after a restart.
//!
//! ```sh
//! cargo run --release --example checkpoint_restart
//! ```

use std::time::Instant;
use tree_svd::datasets::DatasetConfig;
use tree_svd::prelude::*;

fn main() {
    let mut cfg = DatasetConfig::youtube();
    cfg.num_nodes = 2000;
    cfg.num_edges = 8000;
    cfg.tau = 4;
    let data = SyntheticDataset::generate(&cfg);
    let mut g = data.stream.snapshot(2);
    let subset = data.sample_subset(100, 5);
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let tree_cfg = TreeSvdConfig {
        dim: 16,
        num_blocks: 8,
        ..TreeSvdConfig::default()
    };

    // Day 1: build, absorb one batch, checkpoint.
    let t0 = Instant::now();
    let mut pipe = TreeSvdPipeline::new(&g, &subset, ppr_cfg, tree_cfg);
    println!("initial build: {:.0}ms", t0.elapsed().as_secs_f64() * 1e3);
    pipe.update(&mut g, data.stream.batch(3));
    let path = std::env::temp_dir().join("tree_svd_checkpoint.json");
    pipe.save(&path).expect("checkpoint");
    println!(
        "checkpointed {} bytes to {}",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );

    // Day 2 (a fresh process): restore and continue incrementally.
    let t1 = Instant::now();
    let mut restored = TreeSvdPipeline::load(&path).expect("restore");
    println!(
        "restore from checkpoint: {:.0}ms (vs rebuilding from scratch)",
        t1.elapsed().as_secs_f64() * 1e3
    );
    let same = pipe
        .embedding()
        .left()
        .sub(&restored.embedding().left())
        .max_abs();
    println!("embedding drift across checkpoint: {same:e} (lossless)");

    let t2 = Instant::now();
    let stats = restored.update(&mut g, data.stream.batch(4));
    println!(
        "next batch after restart: {:.0}ms, {}/{} blocks re-factorised",
        t2.elapsed().as_secs_f64() * 1e3,
        stats.blocks_recomputed,
        stats.blocks_total
    );
    let timings = restored.timings();
    println!(
        "phase breakdown since restart: PPR {:.0}ms | rows {:.0}ms | SVD {:.0}ms",
        timings.ppr_secs * 1e3,
        timings.rows_secs * 1e3,
        timings.svd_secs * 1e3
    );
    std::fs::remove_file(&path).ok();
}
