//! Classify a target user group from subset embeddings — the paper's other
//! motivating task. We embed a subset of a labelled graph snapshot by
//! snapshot and watch classification quality improve as the graph matures
//! (the point of the paper's Exp. 3).
//!
//! ```sh
//! cargo run --release --example targeted_classification
//! ```

use tree_svd::datasets::DatasetConfig;
use tree_svd::prelude::*;

fn main() {
    let mut cfg = DatasetConfig::patent();
    cfg.num_nodes = 5000;
    cfg.num_edges = 25_000;
    cfg.tau = 5;
    let data = SyntheticDataset::generate(&cfg);
    let subset = data.sample_subset(250, 21);
    let labels = data.subset_labels(&subset);
    println!(
        "classifying {} target users into {} classes, 50% training ratio\n",
        subset.len(),
        cfg.num_classes
    );

    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-4,
    };
    let tree_cfg = TreeSvdConfig {
        dim: 32,
        branching: 4,
        num_blocks: 16,
        ..TreeSvdConfig::default()
    };
    let task = NodeClassificationTask::new(&labels, 0.5, 3);

    println!(
        "{:>9} {:>8} {:>10} {:>10}",
        "snapshot", "edges", "micro-F1", "macro-F1"
    );
    for t in 1..=data.stream.num_snapshots() {
        let g = data.stream.snapshot(t);
        let pipeline = TreeSvdPipeline::new(&g, &subset, ppr_cfg, tree_cfg);
        let scores = task.evaluate(&pipeline.embedding().left());
        println!(
            "{:>9} {:>8} {:>9.1}% {:>9.1}%",
            t,
            g.num_edges(),
            scores.micro * 100.0,
            scores.macro_ * 100.0
        );
    }
    println!("\nquality climbs with the evolving graph — embeddings must be kept fresh.");
}
