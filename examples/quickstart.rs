//! Quickstart: embed a subset of nodes of a small dynamic graph with
//! Tree-SVD and keep the embedding fresh as edges arrive.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tree_svd::prelude::*;

fn main() {
    // 1. A toy directed graph: two loose communities bridged by one edge.
    let mut g = DynGraph::with_nodes(12);
    for (u, v) in [
        (0, 1),
        (1, 2),
        (2, 0),
        (0, 3),
        (3, 1),
        (4, 2), // community A
        (6, 7),
        (7, 8),
        (8, 6),
        (9, 7),
        (10, 8),
        (8, 9), // community B
        (2, 6), // bridge
    ] {
        g.insert_edge(u, v);
    }

    // 2. The subset we care about — say, four "VIP" nodes.
    let subset = vec![0u32, 2, 7, 8];

    // 3. Build the end-to-end pipeline: Forward-Push PPR (both directions),
    //    the log-scaled proximity matrix, and the hierarchical Tree-SVD.
    let ppr_cfg = PprConfig {
        alpha: 0.2,
        r_max: 1e-5,
    };
    let tree_cfg = TreeSvdConfig {
        dim: 4,
        branching: 2,
        num_blocks: 4,
        // Eager per-block updates so this demo visibly reacts to every
        // event; production uses the default lazy policy
        // (`UpdatePolicy::Lazy { delta: 0.65 }`), which skips blocks whose
        // change is negligible in Frobenius norm.
        policy: UpdatePolicy::ChangedOnly,
        ..TreeSvdConfig::default()
    };
    let mut pipeline = TreeSvdPipeline::new(&g, &subset, ppr_cfg, tree_cfg);

    println!("initial embedding X = U·√Σ  (one row per subset node):");
    print_embedding(&pipeline);

    // 4. The graph changes: a few edge events arrive. The pipeline updates
    //    PPR incrementally (Algorithm 2) and re-factorises only the proximity
    //    blocks that moved past the lazy threshold (Algorithm 4).
    let events = vec![
        EdgeEvent::insert(0, 7),
        EdgeEvent::insert(7, 0),
        EdgeEvent::delete(2, 6),
    ];
    let stats = pipeline.update(&mut g, &events);
    println!(
        "\nafter {} events: {}/{} blocks re-factorised, {} tree merges redone",
        events.len(),
        stats.blocks_recomputed,
        stats.blocks_total,
        stats.merges_recomputed,
    );
    print_embedding(&pipeline);

    // 5. Embeddings feed downstream tasks directly; e.g. cosine similarity
    //    between subset nodes.
    let x = pipeline.embedding().left();
    let cos = |a: &[f64], b: &[f64]| {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    };
    println!(
        "\ncos(node {}, node {}) = {:+.3}   (same community)",
        subset[2],
        subset[3],
        cos(x.row(2), x.row(3))
    );
    println!(
        "cos(node {}, node {}) = {:+.3}   (node 0 now links to 7)",
        subset[0],
        subset[2],
        cos(x.row(0), x.row(2))
    );
}

fn print_embedding(pipeline: &TreeSvdPipeline) {
    let x = pipeline.embedding().left();
    for (i, &node) in pipeline.sources().iter().enumerate() {
        let row: Vec<String> = x.row(i).iter().map(|v| format!("{v:+.3}")).collect();
        println!("  node {node:>2}: [{}]", row.join(", "));
    }
}
